//! A small Rust tokenizer and lightweight item parser for the custom
//! lints.
//!
//! The PR-1 lints were line-regex matchers: they could be fooled by
//! pattern text inside string literals, lost track of `#[cfg(test)]`
//! boundaries when brace counting met unusual lines, and could not
//! answer questions like "which identifier does this `.iter()` actually
//! receive?". This module replaces that substrate with a real token
//! stream plus just enough item structure (functions, parameters,
//! `cfg(test)` regions, string consts) for the analyses in
//! [`crate::lints`] and [`crate::locks`] to reason about code instead of
//! lines.
//!
//! Design constraints:
//!
//! * **No external deps** — the workspace is vendored-offline; this is a
//!   hand-rolled lexer, not `syn`.
//! * **Round-trip fidelity** — concatenating every token's text
//!   reproduces the input byte-for-byte (property-tested), so nothing in
//!   the source can hide between tokens.
//! * **Strings and comments are terminal** — their contents never leak
//!   into the code-token sequence, which is what makes the lints immune
//!   to `".unwrap()"` in prose.
//!
//! The parser layer is deliberately *lightweight*: it recognizes
//! function items (name, parameter names, body token range), `#[cfg(test)]`
//! regions (attribute through the end of the gated item), and
//! file-local `const NAME: &str = "…";` definitions. It does not build
//! an AST; analyses pattern-match over the code-token sequence with this
//! index for orientation.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Lexical class of one token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (including raw identifiers like `r#type`).
    Ident,
    /// Lifetime or loop label (`'a`, `'static`, `'outer`).
    Lifetime,
    /// String literal of any flavor: `"…"`, `r"…"`, `r#"…"#`, `b"…"`,
    /// `br#"…"#`.
    Str,
    /// Character or byte-character literal (`'x'`, `b'\n'`).
    Char,
    /// Numeric literal, including float forms and type suffixes.
    Num,
    /// `// …` comment (plain or doc), excluding the newline.
    LineComment,
    /// `/* … */` comment (possibly nested, possibly spanning lines).
    BlockComment,
    /// Whitespace run, including newlines.
    Whitespace,
    /// Operator or delimiter (multi-character operators are one token).
    Punct,
}

impl TokenKind {
    /// Whether tokens of this kind participate in code (as opposed to
    /// comments and spacing).
    pub fn is_code(self) -> bool {
        !matches!(
            self,
            TokenKind::LineComment | TokenKind::BlockComment | TokenKind::Whitespace
        )
    }
}

/// One lexed token: kind, exact source text, and 1-based start line.
#[derive(Debug, Clone)]
pub struct Token {
    /// Lexical class.
    pub kind: TokenKind,
    /// Exact source text (round-trip safe).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: usize,
}

/// Multi-character operators, longest first so maximal munch is a linear
/// scan of this table.
const OPERATORS: &[&str] = &[
    "<<=", ">>=", "...", "..=", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "+=", "-=",
    "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>", "..",
];

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes Rust source into a token stream whose concatenated text equals
/// the input exactly. The lexer never fails: malformed or unterminated
/// constructs are absorbed into the current token up to end of input,
/// which is the right behavior for a lint (garbage stays quarantined in
/// one token instead of derailing the rest of the file).
pub fn lex(source: &str) -> Vec<Token> {
    let chars: Vec<char> = source.chars().collect();
    let mut tokens = Vec::new();
    let mut line = 1usize;
    let mut i = 0usize;
    while i < chars.len() {
        let start = i;
        let start_line = line;
        let c = chars[i];
        let kind = if c.is_whitespace() {
            while i < chars.len() && chars[i].is_whitespace() {
                i += 1;
            }
            TokenKind::Whitespace
        } else if c == '/' && chars.get(i + 1) == Some(&'/') {
            while i < chars.len() && chars[i] != '\n' {
                i += 1;
            }
            TokenKind::LineComment
        } else if c == '/' && chars.get(i + 1) == Some(&'*') {
            i = scan_block_comment(&chars, i);
            TokenKind::BlockComment
        } else if let Some(end) = scan_raw_string(&chars, i) {
            i = end;
            TokenKind::Str
        } else if c == '"' || (c == 'b' && chars.get(i + 1) == Some(&'"')) {
            i = scan_string(&chars, if c == 'b' { i + 1 } else { i });
            TokenKind::Str
        } else if c == 'b' && chars.get(i + 1) == Some(&'\'') {
            i = scan_char(&chars, i + 1);
            TokenKind::Char
        } else if c == 'r'
            && chars.get(i + 1) == Some(&'#')
            && chars.get(i + 2).is_some_and(|&c| is_ident_start(c))
        {
            // Raw identifier `r#type`.
            i += 2;
            while i < chars.len() && is_ident_continue(chars[i]) {
                i += 1;
            }
            TokenKind::Ident
        } else if c == '\'' {
            match classify_quote(&chars, i) {
                Quote::Lifetime => {
                    i += 1;
                    while i < chars.len() && is_ident_continue(chars[i]) {
                        i += 1;
                    }
                    TokenKind::Lifetime
                }
                Quote::Char => {
                    i = scan_char(&chars, i);
                    TokenKind::Char
                }
            }
        } else if is_ident_start(c) {
            while i < chars.len() && is_ident_continue(chars[i]) {
                i += 1;
            }
            TokenKind::Ident
        } else if c.is_ascii_digit() {
            i = scan_number(&chars, i);
            TokenKind::Num
        } else {
            i += scan_operator(&chars, i);
            TokenKind::Punct
        };
        let text: String = chars[start..i].iter().collect();
        line += text.matches('\n').count();
        tokens.push(Token {
            kind,
            text,
            line: start_line,
        });
    }
    tokens
}

/// Consumes a possibly-nested block comment starting at `/*`; returns the
/// index one past `*/` (or end of input if unterminated).
fn scan_block_comment(chars: &[char], mut i: usize) -> usize {
    let mut depth = 0u32;
    while i < chars.len() {
        if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
            depth += 1;
            i += 2;
        } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
            depth -= 1;
            i += 2;
            if depth == 0 {
                return i;
            }
        } else {
            i += 1;
        }
    }
    i
}

/// If `i` starts a raw-string opener (`r"`, `r#"`, `br##"`, …), consumes
/// the whole literal and returns the end index.
fn scan_raw_string(chars: &[char], start: usize) -> Option<usize> {
    let mut i = start;
    if chars.get(i) == Some(&'b') {
        i += 1;
    }
    if chars.get(i) != Some(&'r') {
        return None;
    }
    i += 1;
    let mut hashes = 0usize;
    while chars.get(i) == Some(&'#') {
        hashes += 1;
        i += 1;
    }
    if chars.get(i) != Some(&'"') {
        return None;
    }
    i += 1;
    while i < chars.len() {
        if chars[i] == '"' && (1..=hashes).all(|k| chars.get(i + k) == Some(&'#')) {
            return Some(i + 1 + hashes);
        }
        i += 1;
    }
    Some(i)
}

/// Consumes a cooked string starting at its opening quote; returns the
/// index one past the closing quote (or end of input).
fn scan_string(chars: &[char], open: usize) -> usize {
    let mut i = open + 1;
    while i < chars.len() {
        match chars[i] {
            '\\' => i += 2, // may step past a truncated escape at EOF
            '"' => return i + 1,
            _ => i += 1,
        }
    }
    i.min(chars.len())
}

/// Consumes a character literal starting at its opening quote; returns
/// the index one past the closing quote (or end of input).
fn scan_char(chars: &[char], open: usize) -> usize {
    let mut i = open + 1;
    while i < chars.len() {
        match chars[i] {
            '\\' => i += 2, // may step past a truncated escape at EOF
            '\'' => return i + 1,
            '\n' => return i, // unterminated; don't eat the line
            _ => i += 1,
        }
    }
    i.min(chars.len())
}

enum Quote {
    Lifetime,
    Char,
}

/// Disambiguates `'` between a lifetime/label and a char literal: `'a'`
/// closes within two characters, `'a` (lifetime) never does, and an
/// escape (`'\n'`) is always a char literal.
fn classify_quote(chars: &[char], i: usize) -> Quote {
    match chars.get(i + 1) {
        Some(&'\\') => Quote::Char,
        Some(&c) if is_ident_start(c) || c.is_ascii_digit() => {
            if chars.get(i + 2) == Some(&'\'') {
                Quote::Char
            } else {
                Quote::Lifetime
            }
        }
        _ => Quote::Char,
    }
}

/// Consumes a numeric literal: integer or float, with radix prefixes,
/// digit separators, exponents, and type suffixes. A `.` followed by an
/// identifier (method call on a literal) or another `.` (range) is not
/// part of the number.
fn scan_number(chars: &[char], start: usize) -> usize {
    let mut i = start;
    let radix_prefixed =
        chars[i] == '0' && matches!(chars.get(i + 1), Some('x' | 'o' | 'b' | 'X' | 'O' | 'B'));
    if radix_prefixed {
        i += 2;
        while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
            i += 1;
        }
        return i;
    }
    while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '_') {
        i += 1;
    }
    // Fractional part: `1.5` and trailing-dot `1.`, but not `1.max(…)`
    // and not `1..n`.
    if chars.get(i) == Some(&'.') {
        let after = chars.get(i + 1).copied();
        if after.is_some_and(|c| c.is_ascii_digit()) {
            i += 1;
            while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '_') {
                i += 1;
            }
        } else if !after.is_some_and(|c| is_ident_start(c) || c == '.') {
            i += 1;
        }
    }
    // Exponent.
    if matches!(chars.get(i), Some('e' | 'E')) {
        let mut j = i + 1;
        if matches!(chars.get(j), Some('+' | '-')) {
            j += 1;
        }
        if chars.get(j).is_some_and(char::is_ascii_digit) {
            i = j;
            while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '_') {
                i += 1;
            }
        }
    }
    // Type suffix (`u32`, `f64`, `usize`).
    if chars.get(i).is_some_and(|&c| is_ident_start(c)) {
        while i < chars.len() && is_ident_continue(chars[i]) {
            i += 1;
        }
    }
    i
}

/// Length of the operator token at `i`: the longest match in
/// [`OPERATORS`], else one character.
fn scan_operator(chars: &[char], i: usize) -> usize {
    for op in OPERATORS {
        if op
            .chars()
            .enumerate()
            .all(|(k, c)| chars.get(i + k) == Some(&c))
        {
            return op.chars().count();
        }
    }
    1
}

/// The inner text of a string-literal token: prefixes (`b`, `r`, `#`s)
/// and quotes stripped, escapes left as written.
pub fn str_contents(text: &str) -> &str {
    let t = text.strip_prefix('b').unwrap_or(text);
    let t = t.strip_prefix('r').unwrap_or(t);
    let t = t.trim_start_matches('#');
    let t = t.strip_prefix('"').unwrap_or(t);
    let t = t.trim_end_matches('#');
    t.strip_suffix('"').unwrap_or(t)
}

/// The numeric value of a [`TokenKind::Num`] token if it lexes as a
/// *float* literal (has a fractional part or exponent). Integer literals
/// return `None` — they are not float-equality hazards.
pub fn float_value(text: &str) -> Option<f64> {
    let body: String = text.chars().filter(|&c| c != '_').collect();
    if body.starts_with("0x") || body.starts_with("0X") {
        return None;
    }
    // Strip a type suffix (`f32`/`f64`), if any.
    let body = body.strip_suffix("f64").unwrap_or(&body);
    let body = body.strip_suffix("f32").unwrap_or(body);
    if !(body.contains('.') || body.contains('e') || body.contains('E')) {
        return None;
    }
    body.parse::<f64>().ok()
}

/// One function item found in a file.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// Parameter names, in order (`self` is not included).
    pub params: Vec<String>,
    /// Code-token index range of the body, inclusive of both braces;
    /// `None` for a bodiless signature (trait method declaration).
    pub body: Option<(usize, usize)>,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Whether the function sits inside a `#[cfg(test)]` region.
    pub in_test: bool,
}

/// A lexed file plus the lightweight item index the analyses consume.
#[derive(Debug)]
pub struct FileModel {
    /// Where the file came from (for diagnostics).
    pub path: PathBuf,
    /// Owning crate, derived from the path (`crates/<name>/…` → name,
    /// root `src/` → `root`, anything else → file stem).
    pub crate_name: String,
    /// The full token stream.
    pub tokens: Vec<Token>,
    /// Indices into [`FileModel::tokens`] of the code tokens (everything
    /// but comments and whitespace).
    pub code: Vec<usize>,
    /// Per-code-token flag: inside a `#[cfg(test)]` region.
    pub in_test: Vec<bool>,
    /// Function items, with body ranges as indices into
    /// [`FileModel::code`].
    pub fns: Vec<FnItem>,
    /// File-local `const NAME: &str = "…";` values (used to resolve
    /// environment-variable names read through a const).
    pub consts: BTreeMap<String, String>,
    /// Concatenated comment text per 1-based line (block comments
    /// contribute to every line they span).
    pub comments: BTreeMap<usize, String>,
}

impl FileModel {
    /// The code token at code index `ci`.
    pub fn tok(&self, ci: usize) -> &Token {
        static EMPTY: Token = Token {
            kind: TokenKind::Whitespace,
            text: String::new(),
            line: 0,
        };
        self.code
            .get(ci)
            .and_then(|&ti| self.tokens.get(ti))
            .unwrap_or(&EMPTY)
    }

    /// Text of the code token at code index `ci` ("" out of range).
    pub fn text(&self, ci: usize) -> &str {
        &self.tok(ci).text
    }

    /// 1-based line of the code token at `ci` (0 out of range).
    pub fn line(&self, ci: usize) -> usize {
        self.tok(ci).line
    }

    /// Whether code index `ci` is an identifier with exactly this text.
    pub fn is_ident(&self, ci: usize, text: &str) -> bool {
        let t = self.tok(ci);
        t.kind == TokenKind::Ident && t.text == text
    }

    /// Whether code index `ci` is a punctuation token with this text.
    pub fn is_punct(&self, ci: usize, text: &str) -> bool {
        let t = self.tok(ci);
        t.kind == TokenKind::Punct && t.text == text
    }

    /// The comment text attached to `line` ("" if none).
    pub fn comment_on(&self, line: usize) -> &str {
        self.comments.get(&line).map_or("", String::as_str)
    }

    /// The function item whose body contains code index `ci`, if any
    /// (innermost wins, so nested `fn`s resolve to themselves).
    pub fn enclosing_fn(&self, ci: usize) -> Option<&FnItem> {
        self.fns
            .iter()
            .filter(|f| f.body.is_some_and(|(s, e)| s <= ci && ci <= e))
            .min_by_key(|f| f.body.map_or(usize::MAX, |(s, e)| e - s))
    }

    /// Walks a dotted receiver chain *backwards* from the code index just
    /// before a `.method` pair: returns the chain of identifier segments
    /// (`self.shared.state` → `["self", "shared", "state"]`). An empty
    /// vector means the receiver is not a plain dotted path (a call
    /// result, an index expression, …).
    pub fn receiver_chain(&self, mut ci: usize) -> Vec<String> {
        let mut rev = Vec::new();
        loop {
            let t = self.tok(ci);
            if t.kind != TokenKind::Ident {
                break;
            }
            rev.push(t.text.clone());
            if ci >= 2 && self.is_punct(ci - 1, ".") && self.tok(ci - 2).kind == TokenKind::Ident {
                ci -= 2;
            } else {
                break;
            }
        }
        rev.reverse();
        rev
    }
}

/// Derives the owning crate name from a workspace-relative or absolute
/// path.
fn crate_of(path: &Path) -> String {
    let mut components = path.components().peekable();
    while let Some(c) = components.next() {
        if c.as_os_str() == "crates" {
            if let Some(name) = components.peek() {
                return name.as_os_str().to_string_lossy().into_owned();
            }
        }
    }
    // Root package `src/` tree, or a free-standing fixture file.
    let under_src = path.components().any(|c| c.as_os_str() == "src");
    if under_src {
        "root".to_string()
    } else {
        path.file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "file".to_string())
    }
}

/// Lexes and indexes one source file.
pub fn model(path: &Path, source: &str) -> FileModel {
    let tokens = lex(source);
    let code: Vec<usize> = tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| t.kind.is_code())
        .map(|(i, _)| i)
        .collect();
    let mut comments: BTreeMap<usize, String> = BTreeMap::new();
    for t in &tokens {
        match t.kind {
            TokenKind::LineComment => {
                comments.entry(t.line).or_default().push_str(&t.text);
            }
            TokenKind::BlockComment => {
                for (offset, part) in t.text.lines().enumerate() {
                    comments.entry(t.line + offset).or_default().push_str(part);
                }
            }
            _ => {}
        }
    }
    let mut m = FileModel {
        path: path.to_path_buf(),
        crate_name: crate_of(path),
        tokens,
        in_test: vec![false; code.len()],
        code,
        fns: Vec::new(),
        consts: BTreeMap::new(),
        comments,
    };
    mark_test_regions(&mut m);
    collect_consts(&mut m);
    collect_fns(&mut m);
    m
}

/// Finds the code index of the matching close delimiter for the open
/// delimiter at `open` (`{`/`}`, `(`/`)`, `[`/`]`). Returns the last
/// code index if unbalanced.
pub fn matching_close(m: &FileModel, open: usize, open_text: &str, close_text: &str) -> usize {
    let mut depth = 0i64;
    let mut ci = open;
    while ci < m.code.len() {
        if m.is_punct(ci, open_text) {
            depth += 1;
        } else if m.is_punct(ci, close_text) {
            depth -= 1;
            if depth == 0 {
                return ci;
            }
        }
        ci += 1;
    }
    m.code.len().saturating_sub(1)
}

/// Marks every code token covered by a `#[cfg(test)]`-gated item: the
/// attribute itself, any further attributes, and the item through its
/// closing brace (or terminating semicolon for a bodiless item).
fn mark_test_regions(m: &mut FileModel) {
    let mut ci = 0usize;
    while ci < m.code.len() {
        if !(m.is_punct(ci, "#") && m.is_punct(ci + 1, "[")) {
            ci += 1;
            continue;
        }
        let close = matching_close(m, ci + 1, "[", "]");
        // `cfg(test)` / `cfg(all(test, …))` gate test code; `cfg(not(test))`
        // gates *production* code and must not be exempted.
        let is_cfg_test = m.is_ident(ci + 2, "cfg")
            && (ci + 2..close).any(|k| m.is_ident(k, "test"))
            && !(ci + 2..close).any(|k| m.is_ident(k, "not"));
        if !is_cfg_test {
            ci = close + 1;
            continue;
        }
        // Skip trailing attributes, then cover the item.
        let mut item = close + 1;
        while m.is_punct(item, "#") && m.is_punct(item + 1, "[") {
            item = matching_close(m, item + 1, "[", "]") + 1;
        }
        let mut end = item;
        while end < m.code.len() {
            if m.is_punct(end, ";") {
                break;
            }
            if m.is_punct(end, "{") {
                end = matching_close(m, end, "{", "}");
                break;
            }
            end += 1;
        }
        let hi = end.min(m.in_test.len().saturating_sub(1));
        for flag in m.in_test[ci..=hi].iter_mut() {
            *flag = true;
        }
        ci = end + 1;
    }
}

/// Collects `const NAME: &str = "…";` (and `static`) definitions whose
/// value is a single string literal.
fn collect_consts(m: &mut FileModel) {
    let mut found = Vec::new();
    for ci in 0..m.code.len() {
        if !(m.is_ident(ci, "const") || m.is_ident(ci, "static")) {
            continue;
        }
        let name_tok = m.tok(ci + 1);
        if name_tok.kind != TokenKind::Ident {
            continue;
        }
        let name = name_tok.text.clone();
        if !m.is_punct(ci + 2, ":") {
            continue;
        }
        // Scan forward to `=` within this item, then expect [&] "…" ;
        let mut k = ci + 3;
        while k < m.code.len() && !m.is_punct(k, "=") && !m.is_punct(k, ";") {
            k += 1;
        }
        if !m.is_punct(k, "=") {
            continue;
        }
        let mut v = k + 1;
        if m.is_punct(v, "&") {
            v += 1;
        }
        if m.tok(v).kind == TokenKind::Str && m.is_punct(v + 1, ";") {
            found.push((name, str_contents(m.text(v)).to_string()));
        }
    }
    for (name, value) in found {
        m.consts.insert(name, value);
    }
}

/// Collects function items: name, parameter names, and body range.
fn collect_fns(m: &mut FileModel) {
    let mut found = Vec::new();
    for ci in 0..m.code.len() {
        if !m.is_ident(ci, "fn") {
            continue;
        }
        let name_tok = m.tok(ci + 1);
        if name_tok.kind != TokenKind::Ident {
            continue; // `fn(u32) -> u32` pointer type
        }
        let name = name_tok.text.clone();
        // Skip generics to the parameter list.
        let mut k = ci + 2;
        if m.is_punct(k, "<") {
            let mut depth = 0i64;
            while k < m.code.len() {
                match m.text(k) {
                    "<" => depth += 1,
                    ">" => {
                        depth -= 1;
                        if depth == 0 {
                            k += 1;
                            break;
                        }
                    }
                    "<<" => depth += 2,
                    ">>" => depth -= 2,
                    _ => {}
                }
                k += 1;
            }
        }
        if !m.is_punct(k, "(") {
            continue;
        }
        let params_end = matching_close(m, k, "(", ")");
        let mut params = Vec::new();
        let mut p = k + 1;
        let mut depth = 1i64;
        while p < params_end {
            match m.text(p) {
                "(" | "[" | "{" | "<" => depth += 1,
                ")" | "]" | "}" | ">" => depth -= 1,
                _ => {
                    if depth == 1
                        && m.tok(p).kind == TokenKind::Ident
                        && m.is_punct(p + 1, ":")
                        && !m.is_punct(p + 2, ":")
                        && (m.is_punct(p - 1, "(")
                            || m.is_punct(p - 1, ",")
                            || m.is_ident(p - 1, "mut"))
                    {
                        params.push(m.text(p).to_string());
                    }
                }
            }
            p += 1;
        }
        // Body: the first `{` before a `;` ends the signature.
        let mut b = params_end + 1;
        let mut body = None;
        while b < m.code.len() {
            if m.is_punct(b, ";") {
                break;
            }
            if m.is_punct(b, "{") {
                body = Some((b, matching_close(m, b, "{", "}")));
                break;
            }
            b += 1;
        }
        let in_test = m.in_test.get(ci).copied().unwrap_or(false);
        found.push(FnItem {
            name,
            params,
            body,
            line: m.line(ci),
            in_test,
        });
    }
    m.fns = found;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn round_trips_mixed_source() {
        let src = "fn f(x: u32) -> u32 { // c\n  let s = \"a.unwrap()\"; /* b */ x + 1.5e3 }\n";
        let joined: String = lex(src).iter().map(|t| t.text.as_str()).collect();
        assert_eq!(joined, src);
    }

    #[test]
    fn strings_and_comments_are_terminal() {
        for src in [
            "let s = \"call .unwrap() now\";",
            "let r = r#\"panic! \"inner\" \"#;",
            "let b = b\"bytes .expect(\";",
            "// .unwrap()\nlet x = 1;",
            "/* outer /* nested .unwrap() */ still */ let y = 2;",
        ] {
            // String/char literals are single tokens of their own kind;
            // their contents must never surface as Ident/Punct tokens.
            let has_unwrap_code = lex(src).iter().any(|t| {
                matches!(t.kind, TokenKind::Ident | TokenKind::Punct)
                    && (t.text.contains("unwrap") || t.text.contains("panic"))
            });
            assert!(!has_unwrap_code, "leaked code token in {src:?}");
        }
    }

    #[test]
    fn char_vs_lifetime() {
        let toks = kinds("let c: char = 'x'; let l: &'a str = s; 'outer: loop { break 'outer; }");
        assert!(toks.contains(&(TokenKind::Char, "'x'".to_string())));
        assert!(toks.contains(&(TokenKind::Lifetime, "'a".to_string())));
        assert!(toks.contains(&(TokenKind::Lifetime, "'outer".to_string())));
        let esc = kinds(r"let n = '\n'; let q = '\'';");
        assert!(esc.contains(&(TokenKind::Char, r"'\n'".to_string())));
        assert!(esc.contains(&(TokenKind::Char, r"'\''".to_string())));
    }

    #[test]
    fn numbers_floats_methods_and_ranges() {
        let toks = kinds("1.5 1.5e3 1. 0x1f 1_000 2.5f64 1.max(2) 0..10");
        assert!(toks.contains(&(TokenKind::Num, "1.5".to_string())));
        assert!(toks.contains(&(TokenKind::Num, "1.5e3".to_string())));
        assert!(toks.contains(&(TokenKind::Num, "1.".to_string())));
        assert!(toks.contains(&(TokenKind::Num, "0x1f".to_string())));
        assert!(toks.contains(&(TokenKind::Num, "2.5f64".to_string())));
        // Method call on a literal: the dot is punctuation.
        assert!(toks.contains(&(TokenKind::Num, "1".to_string())));
        assert!(toks.contains(&(TokenKind::Ident, "max".to_string())));
        // Range: `0..10` is three tokens.
        assert!(toks.contains(&(TokenKind::Punct, "..".to_string())));
        assert_eq!(float_value("1.5"), Some(1.5));
        assert_eq!(float_value("2.5f64"), Some(2.5));
        assert_eq!(float_value("10"), None);
        assert_eq!(float_value("0x1f"), None);
    }

    #[test]
    fn str_contents_strips_all_flavors() {
        assert_eq!(str_contents("\"abc\""), "abc");
        assert_eq!(str_contents("r#\"a\"b\"#"), "a\"b");
        assert_eq!(str_contents("br##\"x\"##"), "x");
        assert_eq!(str_contents("b\"y\""), "y");
    }

    #[test]
    fn cfg_test_region_covers_the_item() {
        let src =
            "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() { x.unwrap(); }\n}\nfn c() {}\n";
        let m = model(Path::new("x.rs"), src);
        let fns: Vec<(&str, bool)> = m.fns.iter().map(|f| (f.name.as_str(), f.in_test)).collect();
        assert_eq!(fns, vec![("a", false), ("b", true), ("c", false)]);
    }

    #[test]
    fn cfg_test_in_a_string_is_not_a_region() {
        let src = "fn a() { let s = \"#[cfg(test)]\"; }\nfn b() {}\n";
        let m = model(Path::new("x.rs"), src);
        assert!(m.fns.iter().all(|f| !f.in_test));
    }

    #[test]
    fn fn_items_capture_params_and_bodies() {
        let src = "fn f<T: Clone>(a: u32, mut b: T, c: &str) -> u32 { a }\nfn sig(x: u32);\n";
        let m = model(Path::new("x.rs"), src);
        assert_eq!(m.fns.len(), 2);
        assert_eq!(m.fns[0].params, vec!["a", "b", "c"]);
        assert!(m.fns[0].body.is_some());
        assert!(m.fns[1].body.is_none());
    }

    #[test]
    fn consts_resolve_string_values() {
        let src = "pub const JOBS_ENV: &str = \"PHARMAVERIFY_JOBS\";\nconst N: usize = 4;\n";
        let m = model(Path::new("x.rs"), src);
        assert_eq!(
            m.consts.get("JOBS_ENV").map(String::as_str),
            Some("PHARMAVERIFY_JOBS")
        );
        assert!(!m.consts.contains_key("N"));
    }

    #[test]
    fn receiver_chains_walk_dotted_paths() {
        let src = "fn f() { self.shared.state.lock(); item.iter(); }";
        let m = model(Path::new("x.rs"), src);
        // Find the `lock` ident and walk back from the token before `.`.
        let lock_at = (0..m.code.len())
            .find(|&ci| m.is_ident(ci, "lock"))
            .unwrap();
        assert_eq!(
            m.receiver_chain(lock_at - 2),
            vec!["self", "shared", "state"]
        );
        let iter_at = (0..m.code.len())
            .find(|&ci| m.is_ident(ci, "iter"))
            .unwrap();
        assert_eq!(m.receiver_chain(iter_at - 2), vec!["item"]);
    }

    #[test]
    fn crate_names_derive_from_paths() {
        assert_eq!(crate_of(Path::new("crates/serve/src/service.rs")), "serve");
        assert_eq!(crate_of(Path::new("src/lib.rs")), "root");
        assert_eq!(crate_of(Path::new("fixtures/locks_abba.rs")), "locks_abba");
    }
}
