//! Determinism audit: the reproduction's headline guarantee is that the
//! whole experiment is a pure function of its seed. The audit runs the
//! table harness twice at the small scale with the same seed and requires
//! the two outputs to be byte-identical — any hash-order leak, time
//! dependence, or thread-scheduling sensitivity shows up as a diff.

use std::path::Path;
use std::process::Command;

/// Outcome of one audit run.
#[derive(Debug)]
pub struct AuditReport {
    /// Bytes of harness output compared.
    pub bytes: usize,
}

/// Arguments of the harness invocation (after `cargo`).
const REPRO_ARGS: &[&str] = &[
    "run",
    "--release",
    "-q",
    "-p",
    "pharmaverify-bench",
    "--bin",
    "repro",
    "--",
    "--scale",
    "small",
];

/// Runs the table harness twice and compares outputs byte-for-byte.
pub fn run(workspace_root: &Path) -> Result<AuditReport, String> {
    let first = run_harness(workspace_root)?;
    let second = run_harness(workspace_root)?;
    if first == second {
        return Ok(AuditReport { bytes: first.len() });
    }
    let at = first
        .iter()
        .zip(&second)
        .position(|(a, b)| a != b)
        .unwrap_or(first.len().min(second.len()));
    let context = String::from_utf8_lossy(&first[at.saturating_sub(40)..first.len().min(at + 40)])
        .into_owned();
    Err(format!(
        "harness output differs between identically-seeded runs \
         (lengths {} vs {}, first divergence at byte {at}, near {context:?})",
        first.len(),
        second.len(),
    ))
}

fn run_harness(workspace_root: &Path) -> Result<Vec<u8>, String> {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let output = Command::new(cargo)
        .args(REPRO_ARGS)
        .current_dir(workspace_root)
        .env("PHARMAVERIFY_SCALE", "small")
        .output()
        .map_err(|e| format!("cannot spawn harness: {e}"))?;
    if !output.status.success() {
        return Err(format!(
            "harness exited with {}: {}",
            output.status,
            String::from_utf8_lossy(&output.stderr)
        ));
    }
    Ok(output.stdout)
}
