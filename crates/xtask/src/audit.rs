//! Determinism audit: the reproduction's headline guarantee is that the
//! whole experiment is a pure function of its seed — independent of
//! thread scheduling. The audit runs the table harness twice at the small
//! scale with the same seed, once single-threaded (`PHARMAVERIFY_JOBS=1`)
//! and once with four workers, and requires the two outputs to be
//! byte-identical — any hash-order leak, time dependence, or
//! thread-scheduling sensitivity shows up as a diff.
//!
//! The same double-run is then repeated with fault injection enabled
//! (`--fault-rate 0.2`): the injected fault universe is derived from the
//! corpus RNG, so a crawl that times out, retries, and trips circuit
//! breakers must still be a pure function of the seed. The faulted
//! output must additionally *start with* the fault-free output — the
//! robustness study is an appended section, never a perturbation of the
//! regular tables.

use std::path::Path;
use std::process::Command;

/// Outcome of one audit run.
#[derive(Debug)]
pub struct AuditReport {
    /// Bytes of fault-free harness output compared.
    pub bytes: usize,
    /// Bytes of fault-injected harness output compared.
    pub fault_bytes: usize,
}

/// Arguments of the harness invocation (after `cargo`).
const REPRO_ARGS: &[&str] = &[
    "run",
    "--release",
    "-q",
    "-p",
    "pharmaverify-bench",
    "--bin",
    "repro",
    "--",
    "--scale",
    "small",
];

/// Fault rate of the injected-fault audit runs.
const FAULT_ARGS: &[&str] = &["--fault-rate", "0.2"];

/// Runs the table harness serially and with four workers — first clean,
/// then under fault injection — and compares outputs byte-for-byte.
pub fn run(workspace_root: &Path) -> Result<AuditReport, String> {
    let serial = run_harness(workspace_root, "1", &[])?;
    let parallel = run_harness(workspace_root, "4", &[])?;
    compare(&serial, &parallel, "fault-free")?;

    let fault_serial = run_harness(workspace_root, "1", FAULT_ARGS)?;
    let fault_parallel = run_harness(workspace_root, "4", FAULT_ARGS)?;
    compare(&fault_serial, &fault_parallel, "fault-injected")?;
    if !fault_serial.starts_with(&serial) {
        return Err(
            "fault-injected output does not start with the fault-free output: \
             the robustness study must be a pure suffix"
                .to_string(),
        );
    }

    Ok(AuditReport {
        bytes: serial.len(),
        fault_bytes: fault_serial.len(),
    })
}

fn compare(serial: &[u8], parallel: &[u8], mode: &str) -> Result<(), String> {
    if serial == parallel {
        return Ok(());
    }
    let at = serial
        .iter()
        .zip(parallel)
        .position(|(a, b)| a != b)
        .unwrap_or(serial.len().min(parallel.len()));
    let context =
        String::from_utf8_lossy(&serial[at.saturating_sub(40)..serial.len().min(at + 40)])
            .into_owned();
    Err(format!(
        "{mode} harness output differs between serial and 4-worker runs of the \
         same seed (lengths {} vs {}, first divergence at byte {at}, near {context:?})",
        serial.len(),
        parallel.len(),
    ))
}

fn run_harness(workspace_root: &Path, jobs: &str, extra_args: &[&str]) -> Result<Vec<u8>, String> {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let output = Command::new(cargo)
        .args(REPRO_ARGS)
        .args(extra_args)
        .current_dir(workspace_root)
        .env("PHARMAVERIFY_SCALE", "small")
        .env("PHARMAVERIFY_JOBS", jobs)
        .output()
        .map_err(|e| format!("cannot spawn harness: {e}"))?;
    if !output.status.success() {
        return Err(format!(
            "harness exited with {}: {}",
            output.status,
            String::from_utf8_lossy(&output.stderr)
        ));
    }
    Ok(output.stdout)
}
