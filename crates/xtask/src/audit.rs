//! Determinism audit: the reproduction's headline guarantee is that the
//! whole experiment is a pure function of its seed — independent of
//! thread scheduling. The audit runs the table harness twice at the small
//! scale with the same seed, once single-threaded (`PHARMAVERIFY_JOBS=1`)
//! and once with four workers, and requires the two outputs to be
//! byte-identical — any hash-order leak, time dependence, or
//! thread-scheduling sensitivity shows up as a diff.
//!
//! The same double-run is then repeated with fault injection enabled
//! (`--fault-rate 0.2`): the injected fault universe is derived from the
//! corpus RNG, so a crawl that times out, retries, and trips circuit
//! breakers must still be a pure function of the seed. The faulted
//! output must additionally *start with* the fault-free output — the
//! robustness study is an appended section, never a perturbation of the
//! regular tables.
//!
//! Every run also writes an observability trace (`--trace`), and the
//! audit byte-compares the traces' *deterministic views* (the
//! `"deterministic"` object extracted by
//! [`pharmaverify_obs::deterministic_slice`]) across worker counts: the
//! metric registry and span tree must be as scheduling-independent as
//! the report itself. The fault-injected trace must *differ* from the
//! clean one — injected faults that leave no metric behind would mean
//! the crawl health instrumentation is dead.
//!
//! Finally the double-run is repeated with the serving engine enabled
//! (`--serve-workload 60`), once with `--serve-workers 1` and once with
//! `--serve-workers 4`: the "Serving" report section and the trace's
//! deterministic view (admission, batch, and cache counters; span
//! counts) must be byte-identical across *service* worker counts too —
//! the whole point of the service's determinism contract. The serving
//! section must also be a pure suffix of the fault-free output.
//!
//! The online double-run (`--online-waves 6`, `--serve-workers 1` vs
//! `4`) drives the drift-monitored replay: the workload mix shifts
//! mid-replay, the drift monitor triggers a seeded retrain, and the
//! retrained model is hot-swapped through the registry while requests
//! keep flowing. The "Online" section — drift windows, triggers,
//! retrains, per-model-version verdict tallies — must be byte-identical
//! across service worker counts and a pure suffix of the fault-free
//! output: the swap protocol must not let scheduling touch a single
//! count.
//!
//! The adversarial double-run (`--attack link-farm --attack-strength
//! 0.6`) sweeps a seeded link-farm attack over three strengths and
//! evaluates the spam-mass defense off vs. on at each. The attacked
//! corpora, the TrustRank/Anti-TrustRank kernels, and the CV folds are
//! all pure functions of the seed, so the appended "Adversarial"
//! section must be byte-identical across worker counts and a pure
//! suffix of the fault-free output.
//!
//! The web-tier double-run exercises the web-scale tier (`--scale web
//! --web-domains 12000`): the sharded generator streams twelve thousand
//! domains into the CSR builder and the block TrustRank kernel ranks the
//! frozen graph on 1 vs 4 workers. The whole report — paper tables plus
//! the appended "Scale" section — must be byte-identical across worker
//! counts, and must *start with* the plain fault-free output: the scale
//! study is a pure suffix too.
//!
//! The last double-run drives the tiered verdict federation
//! (`--federation 60`, `--serve-workers 1` vs `4`): every request walks
//! the cache → store → text-only → graph-spliced ladder, a mid-replay
//! restart persists and reloads the verdict store, and the appended
//! "Federation" section — per-tier hits and fallthroughs, verdicts by
//! provenance, fast-vs-slow agreement — must be byte-identical across
//! slow-path worker counts and a pure suffix of the fault-free output.
//! The audit additionally parses the section and requires the majority
//! of requests to have been answered before the slow path: a federation
//! that routes everything to the expensive tier would make the
//! byte-compare vacuous.

use std::path::Path;
use std::process::Command;

/// Outcome of one audit run.
#[derive(Debug)]
pub struct AuditReport {
    /// Bytes of fault-free harness output compared.
    pub bytes: usize,
    /// Bytes of fault-injected harness output compared.
    pub fault_bytes: usize,
    /// Bytes of deterministic trace view compared per fault-free run.
    pub trace_bytes: usize,
    /// Bytes of serve-workload harness output compared.
    pub serve_bytes: usize,
    /// Bytes of online (drift + hot-swap) harness output compared.
    pub online_bytes: usize,
    /// Bytes of adversarial (attack-sweep) harness output compared.
    pub attack_bytes: usize,
    /// Bytes of web-tier harness output compared.
    pub web_bytes: usize,
    /// Bytes of federation (tiered replay) harness output compared.
    pub federation_bytes: usize,
}

/// Arguments of the harness invocation (after `cargo`).
const REPRO_ARGS: &[&str] = &[
    "run",
    "--release",
    "-q",
    "-p",
    "pharmaverify-bench",
    "--bin",
    "repro",
    "--",
    "--scale",
    "small",
];

/// Fault rate of the injected-fault audit runs.
const FAULT_ARGS: &[&str] = &["--fault-rate", "0.2"];

/// Request count of the serve-workload audit runs (the worker count is
/// the variable under test).
const SERVE_SERIAL_ARGS: &[&str] = &["--serve-workload", "60", "--serve-workers", "1"];
const SERVE_PARALLEL_ARGS: &[&str] = &["--serve-workload", "60", "--serve-workers", "4"];

/// Wave count of the online audit runs — enough waves that the mix
/// shift closes at least one drifted window and forces a retrain+swap.
const ONLINE_SERIAL_ARGS: &[&str] = &["--online-waves", "6", "--serve-workers", "1"];
const ONLINE_PARALLEL_ARGS: &[&str] = &["--online-waves", "6", "--serve-workers", "4"];

/// Attack knobs of the adversarial audit runs — a mid-strength link
/// farm, enough to exercise the defended evaluation without dominating
/// the audit's runtime.
const ATTACK_ARGS: &[&str] = &["--attack", "link-farm", "--attack-strength", "0.6"];

/// Domain count of the web-tier audit runs — big enough to shard
/// (default shard size 8192), small enough to keep the audit quick.
const WEB_ARGS: &[&str] = &["--scale", "web", "--web-domains", "12000"];

/// Request count of the federation audit runs (the slow-path worker
/// count is the variable under test).
const FEDERATION_SERIAL_ARGS: &[&str] = &["--federation", "60", "--serve-workers", "1"];
const FEDERATION_PARALLEL_ARGS: &[&str] = &["--federation", "60", "--serve-workers", "4"];

/// Runs the table harness serially and with four workers — first clean,
/// then under fault injection — and compares outputs byte-for-byte.
pub fn run(workspace_root: &Path) -> Result<AuditReport, String> {
    let (serial, serial_trace) = run_harness(workspace_root, "1", &[])?;
    let (parallel, parallel_trace) = run_harness(workspace_root, "4", &[])?;
    compare(&serial, &parallel, "fault-free")?;
    let det = compare_trace_views(&serial_trace, &parallel_trace, "fault-free")?;

    let (fault_serial, fault_serial_trace) = run_harness(workspace_root, "1", FAULT_ARGS)?;
    let (fault_parallel, fault_parallel_trace) = run_harness(workspace_root, "4", FAULT_ARGS)?;
    compare(&fault_serial, &fault_parallel, "fault-injected")?;
    let fault_det =
        compare_trace_views(&fault_serial_trace, &fault_parallel_trace, "fault-injected")?;
    if !fault_serial.starts_with(&serial) {
        return Err(
            "fault-injected output does not start with the fault-free output: \
             the robustness study must be a pure suffix"
                .to_string(),
        );
    }
    if fault_det == det {
        return Err(
            "fault-injected trace is identical to the fault-free trace: \
             injected faults left no metric behind, the crawl health \
             instrumentation is not recording"
                .to_string(),
        );
    }

    let (serve_serial, serve_serial_trace) = run_harness(workspace_root, "1", SERVE_SERIAL_ARGS)?;
    let (serve_parallel, serve_parallel_trace) =
        run_harness(workspace_root, "4", SERVE_PARALLEL_ARGS)?;
    compare(&serve_serial, &serve_parallel, "serve-workload")?;
    let serve_det =
        compare_trace_views(&serve_serial_trace, &serve_parallel_trace, "serve-workload")?;
    if !serve_serial.starts_with(&serial) {
        return Err(
            "serve-workload output does not start with the plain output: \
             the serving study must be a pure suffix"
                .to_string(),
        );
    }
    if serve_det == det {
        return Err("serve-workload trace is identical to the plain trace: the \
             serving engine left no metric behind, its instrumentation \
             is not recording"
            .to_string());
    }

    let (online_serial, online_serial_trace) =
        run_harness(workspace_root, "1", ONLINE_SERIAL_ARGS)?;
    let (online_parallel, online_parallel_trace) =
        run_harness(workspace_root, "4", ONLINE_PARALLEL_ARGS)?;
    compare(&online_serial, &online_parallel, "online")?;
    let online_det = compare_trace_views(&online_serial_trace, &online_parallel_trace, "online")?;
    if !online_serial.starts_with(&serial) {
        return Err("online output does not start with the plain output: \
             the online study must be a pure suffix"
            .to_string());
    }
    if online_det == det {
        return Err("online trace is identical to the plain trace: the drift \
             monitor and model registry left no metric behind, their \
             instrumentation is not recording"
            .to_string());
    }
    // Hot-swap smoke: the audited run must actually have drifted,
    // retrained, and swapped — a drift monitor that never fires would
    // make the byte-compare above vacuous.
    let online_text = String::from_utf8_lossy(&online_serial);
    if !online_text.contains("Online: drift-triggered retrain") {
        return Err("online run printed no \"Online\" section".to_string());
    }
    if !swap_happened(&online_text) {
        return Err(
            "online run never hot-swapped a model: the drift monitor did not \
             trigger a retrain over the audited workload"
                .to_string(),
        );
    }

    let (attack_serial, attack_serial_trace) = run_harness(workspace_root, "1", ATTACK_ARGS)?;
    let (attack_parallel, attack_parallel_trace) = run_harness(workspace_root, "4", ATTACK_ARGS)?;
    compare(&attack_serial, &attack_parallel, "adversarial")?;
    let attack_det =
        compare_trace_views(&attack_serial_trace, &attack_parallel_trace, "adversarial")?;
    if !attack_serial.starts_with(&serial) {
        return Err("adversarial output does not start with the plain output: \
             the attack study must be a pure suffix"
            .to_string());
    }
    if attack_det == det {
        return Err(
            "adversarial trace is identical to the plain trace: the attack \
             generators and defended evaluation left no metric behind, \
             their instrumentation is not recording"
                .to_string(),
        );
    }
    if !String::from_utf8_lossy(&attack_serial).contains("Adversarial: ") {
        return Err("adversarial run printed no \"Adversarial\" section".to_string());
    }

    let (web_serial, web_serial_trace) = run_harness(workspace_root, "1", WEB_ARGS)?;
    let (web_parallel, web_parallel_trace) = run_harness(workspace_root, "4", WEB_ARGS)?;
    compare(&web_serial, &web_parallel, "web-tier")?;
    let web_det = compare_trace_views(&web_serial_trace, &web_parallel_trace, "web-tier")?;
    if web_det == det {
        return Err("web-tier trace is identical to the plain trace: the scale \
             build and rank phases left no metric behind, their \
             instrumentation is not recording"
            .to_string());
    }
    if !web_serial.starts_with(&serial) {
        return Err(
            "web-tier output does not start with the plain small output: \
             the scale study must be a pure suffix"
                .to_string(),
        );
    }
    if web_serial.len() <= serial.len() {
        return Err(
            "web-tier output appended no scale section: the `--scale web` \
             run printed nothing beyond the plain small report"
                .to_string(),
        );
    }

    let (fed_serial, fed_serial_trace) = run_harness(workspace_root, "1", FEDERATION_SERIAL_ARGS)?;
    let (fed_parallel, fed_parallel_trace) =
        run_harness(workspace_root, "4", FEDERATION_PARALLEL_ARGS)?;
    compare(&fed_serial, &fed_parallel, "federation")?;
    let fed_det = compare_trace_views(&fed_serial_trace, &fed_parallel_trace, "federation")?;
    if !fed_serial.starts_with(&serial) {
        return Err("federation output does not start with the plain output: \
             the federation study must be a pure suffix"
            .to_string());
    }
    if fed_det == det {
        return Err(
            "federation trace is identical to the plain trace: the tier \
             router left no metric behind, its instrumentation is not \
             recording"
                .to_string(),
        );
    }
    let fed_text = String::from_utf8_lossy(&fed_serial);
    if !fed_text.contains("Federation: tiered verdict replay") {
        return Err("federation run printed no \"Federation\" section".to_string());
    }
    if !federation_majority_cheap(&fed_text) {
        return Err(
            "federation run routed most requests to the graph-spliced slow \
             path: the cheaper tiers (cache, store, text-only) must answer \
             the majority over the audited workload"
                .to_string(),
        );
    }

    Ok(AuditReport {
        bytes: serial.len(),
        fault_bytes: fault_serial.len(),
        trace_bytes: det.len(),
        serve_bytes: serve_serial.len(),
        online_bytes: online_serial.len(),
        attack_bytes: attack_serial.len(),
        web_bytes: web_serial.len(),
        federation_bytes: fed_serial.len(),
    })
}

/// True when the rendered "Federation" section shows a strict majority
/// of requests answered before the slow path.
fn federation_majority_cheap(report: &str) -> bool {
    let row = |label: &str| {
        report.lines().find_map(|line| {
            let mut cells = line.split('|').map(str::trim).filter(|c| !c.is_empty());
            if cells.next() != Some(label) {
                return None;
            }
            cells.next()?.parse::<u64>().ok()
        })
    };
    match (row("requests"), row("answered before slow path")) {
        (Some(requests), Some(cheap)) => cheap * 2 > requests,
        _ => false,
    }
}

/// True when the rendered "Online" section records a nonzero model
/// version — i.e. at least one drift-triggered retrain was swapped in.
fn swap_happened(report: &str) -> bool {
    report.lines().any(|line| {
        let mut cells = line.split('|').map(str::trim).filter(|c| !c.is_empty());
        cells.next() == Some("final model version")
            && cells
                .next()
                .and_then(|v| v.parse::<u64>().ok())
                .is_some_and(|v| v > 0)
    })
}

/// Byte-compares the deterministic views of two rendered traces and
/// returns the (shared) view.
fn compare_trace_views(serial: &str, parallel: &str, mode: &str) -> Result<String, String> {
    let a = pharmaverify_obs::deterministic_slice(serial)
        .ok_or_else(|| format!("{mode} serial trace has no deterministic section"))?;
    let b = pharmaverify_obs::deterministic_slice(parallel)
        .ok_or_else(|| format!("{mode} 4-worker trace has no deterministic section"))?;
    compare(
        a.as_bytes(),
        b.as_bytes(),
        &format!("{mode} trace (deterministic view)"),
    )?;
    Ok(a.to_string())
}

fn compare(serial: &[u8], parallel: &[u8], mode: &str) -> Result<(), String> {
    if serial == parallel {
        return Ok(());
    }
    let at = serial
        .iter()
        .zip(parallel)
        .position(|(a, b)| a != b)
        .unwrap_or(serial.len().min(parallel.len()));
    let context =
        String::from_utf8_lossy(&serial[at.saturating_sub(40)..serial.len().min(at + 40)])
            .into_owned();
    Err(format!(
        "{mode} harness output differs between serial and 4-worker runs of the \
         same seed (lengths {} vs {}, first divergence at byte {at}, near {context:?})",
        serial.len(),
        parallel.len(),
    ))
}

/// Runs the harness once, returning `(stdout, rendered trace)`.
fn run_harness(
    workspace_root: &Path,
    jobs: &str,
    extra_args: &[&str],
) -> Result<(Vec<u8>, String), String> {
    // lint:allow(nondet): xtask is tooling; honoring cargo's own CARGO env is the documented protocol.
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let trace_path = std::env::temp_dir().join(format!(
        "pharmaverify-audit-{}-j{jobs}-f{}.trace.json",
        std::process::id(),
        extra_args.len()
    ));
    let output = Command::new(cargo)
        .args(REPRO_ARGS)
        .args(extra_args)
        .args([std::ffi::OsStr::new("--trace"), trace_path.as_os_str()])
        .current_dir(workspace_root)
        .env("PHARMAVERIFY_SCALE", "small")
        .env("PHARMAVERIFY_JOBS", jobs)
        .output()
        .map_err(|e| format!("cannot spawn harness: {e}"))?;
    if !output.status.success() {
        return Err(format!(
            "harness exited with {}: {}",
            output.status,
            String::from_utf8_lossy(&output.stderr)
        ));
    }
    let trace = std::fs::read_to_string(&trace_path)
        .map_err(|e| format!("harness wrote no trace at {}: {e}", trace_path.display()))?;
    let _ = std::fs::remove_file(&trace_path);
    Ok((output.stdout, trace))
}
