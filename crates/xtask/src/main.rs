//! `cargo xtask` — workspace checks.
//!
//! ```text
//! cargo xtask check [--skip LAYER]... [--format human|json] [--lint NAME]...
//!                                       all layers (lints, fmt, clippy,
//!                                       determinism)
//! cargo xtask lint [PATH]... [--format human|json] [--lint NAME]...
//!                                       custom source lints only; with no
//!                                       PATH, lints the whole workspace
//! cargo xtask bench [--domains N] [--repeat R] [--out PATH]
//!                                       graph-kernel and corpus-generation
//!                                       micro-benches; writes BENCH_10.json
//!                                       at the workspace root by default
//!                                       and gates throughput against the
//!                                       latest committed BENCH_<n>.json
//! ```
//!
//! `--lint NAME` restricts the custom-lint layer to the named lints
//! (repeatable; names as in `lint:allow(<name>)`). `--format json`
//! emits one machine-readable JSON document on stdout instead of the
//! human report. Exit code 0 when every executed layer passes; 1
//! otherwise. Layer names for `--skip`: `lints`, `fmt`, `clippy`,
//! `determinism`.

use std::path::PathBuf;
use std::process::ExitCode;
use xtask::lints::{json_escape, Diagnostic, Lint};
use xtask::{audit, lints, tools, walk};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("check") => cmd_check(&args[1..]),
        Some("lint") => cmd_lint(&args[1..]),
        Some("bench") => cmd_bench(&args[1..]),
        Some("--help") | Some("-h") | None => {
            print_usage();
            Ok(true)
        }
        Some(other) => Err(format!("unknown task '{other}' (try --help)")),
    };
    match result {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::from(2)
        }
    }
}

fn print_usage() {
    println!(
        "cargo xtask — workspace checks\n\n\
         USAGE:\n\
         \x20 cargo xtask check [--skip lints|fmt|clippy|determinism]...\n\
         \x20                   [--format human|json] [--lint NAME]...\n\
         \x20 cargo xtask lint [PATH]... [--format human|json] [--lint NAME]...\n\
         \x20 cargo xtask bench [--domains N] [--repeat R] [--out PATH]"
    );
}

const LAYERS: &[&str] = &["lints", "fmt", "clippy", "determinism"];

#[derive(PartialEq, Clone, Copy)]
enum Format {
    Human,
    Json,
}

/// Options shared by `check` and `lint`: output format, lint-name
/// filter, and (for `check`) skipped layers, plus any positional paths.
struct Opts {
    format: Format,
    only: Vec<Lint>,
    skip: Vec<String>,
    paths: Vec<PathBuf>,
}

fn parse_opts(args: &[String], allow_skip: bool, allow_paths: bool) -> Result<Opts, String> {
    let mut opts = Opts {
        format: Format::Human,
        only: Vec::new(),
        skip: Vec::new(),
        paths: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--format" => {
                let value = it.next().ok_or("--format needs 'human' or 'json'")?;
                opts.format = match value.as_str() {
                    "human" => Format::Human,
                    "json" => Format::Json,
                    other => return Err(format!("unknown format '{other}'")),
                };
            }
            "--lint" => {
                let name = it.next().ok_or("--lint needs a lint name")?;
                let lint = Lint::from_name(name)
                    .ok_or_else(|| format!("unknown lint '{name}' (names: {})", lint_names()))?;
                opts.only.push(lint);
            }
            "--skip" if allow_skip => {
                let layer = it.next().ok_or("--skip needs a layer name")?;
                if !LAYERS.contains(&layer.as_str()) {
                    return Err(format!("unknown layer '{layer}' (layers: {LAYERS:?})"));
                }
                opts.skip.push(layer.clone());
            }
            other if allow_paths && !other.starts_with('-') => {
                opts.paths.push(PathBuf::from(other));
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(opts)
}

fn lint_names() -> String {
    let names: Vec<&str> = [
        Lint::NoPanic,
        Lint::HashIter,
        Lint::FloatEq,
        Lint::SafetyComment,
        Lint::NoRawEprintln,
        Lint::Nondet,
        Lint::ObsName,
        Lint::LockOrder,
    ]
    .iter()
    .map(|l| l.name())
    .collect();
    names.join(", ")
}

/// One layer's outcome for the JSON report.
struct LayerReport {
    name: &'static str,
    status: &'static str,
    detail: String,
}

fn cmd_check(args: &[String]) -> Result<bool, String> {
    let opts = parse_opts(args, true, false)?;
    let json = opts.format == Format::Json;
    let run = |layer: &str| !opts.skip.iter().any(|s| s == layer);
    let root = walk::workspace_root();
    let mut ok = true;
    let mut layers: Vec<LayerReport> = Vec::new();
    let mut findings: Vec<Diagnostic> = Vec::new();

    if run("lints") {
        let mut diags = workspace_findings()?;
        if !opts.only.is_empty() {
            diags.retain(|d| opts.only.contains(&d.lint));
        }
        let status = if diags.is_empty() { "ok" } else { "failed" };
        if !json {
            for diag in &diags {
                println!("{diag}");
            }
            if diags.is_empty() {
                println!("lints: ok");
            } else {
                println!("lints: {} finding(s)", diags.len());
            }
        }
        ok &= diags.is_empty();
        layers.push(LayerReport {
            name: "lints",
            status,
            detail: format!("{} finding(s)", diags.len()),
        });
        findings = diags;
    } else {
        layers.push(skipped("lints"));
    }

    for (layer, outcome) in [
        ("fmt", run("fmt").then(|| tools::fmt_check(&root))),
        ("clippy", run("clippy").then(|| tools::clippy_check(&root))),
    ] {
        match outcome {
            Some(out) => {
                let (passed, report) = tool_report(layer, out, json);
                ok &= passed;
                layers.push(report);
            }
            None => layers.push(skipped(layer)),
        }
    }

    if run("determinism") {
        if !json {
            println!("determinism: running the table harness serial vs 4-worker (seeded)...");
        }
        match audit::run(&root) {
            Ok(report) => {
                let detail = format!(
                    "{} bytes byte-identical; {} with fault injection; \
                     {} with serve workload; {} with the online drift \
                     replay (hot-swap verified); {} with the link-farm \
                     attack sweep; {} with the web-scale tier; {} with \
                     the tiered federation (majority answered cheap); \
                     {} bytes of deterministic trace view",
                    report.bytes,
                    report.fault_bytes,
                    report.serve_bytes,
                    report.online_bytes,
                    report.attack_bytes,
                    report.web_bytes,
                    report.federation_bytes,
                    report.trace_bytes
                );
                if !json {
                    println!("determinism: ok ({detail})");
                }
                layers.push(LayerReport {
                    name: "determinism",
                    status: "ok",
                    detail,
                });
            }
            Err(message) => {
                if !json {
                    println!("determinism: FAILED\n  {message}");
                }
                ok = false;
                layers.push(LayerReport {
                    name: "determinism",
                    status: "failed",
                    detail: message,
                });
            }
        }
    } else {
        layers.push(skipped("determinism"));
    }

    if json {
        println!("{}", json_report(ok, &layers, &findings));
    } else {
        println!("\nxtask check: {}", if ok { "ok" } else { "FAILED" });
    }
    Ok(ok)
}

/// `cargo xtask bench`: builds and runs the `microbench` binary,
/// recording kernel wall clocks and throughput in `BENCH_10.json` at the
/// workspace root (`--out` overrides; `--domains` / `--repeat` pass
/// through to the binary), then gates the fresh numbers against the
/// latest committed `BENCH_<n>.json` — any shared bench name whose
/// throughput drops by more than 25% fails the task.
fn cmd_bench(args: &[String]) -> Result<bool, String> {
    let mut out = "BENCH_10.json".to_string();
    let mut passthrough: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => {
                out = it.next().ok_or("--out needs a path")?.clone();
            }
            "--domains" | "--repeat" => {
                let value = it.next().ok_or_else(|| format!("{arg} needs a value"))?;
                passthrough.push(arg.clone());
                passthrough.push(value.clone());
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    let root = walk::workspace_root();
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    println!("bench: running micro-benchmarks (results -> {out})...");
    let status = std::process::Command::new(cargo)
        .args([
            "run",
            "--release",
            "-q",
            "-p",
            "pharmaverify-bench",
            "--bin",
            "microbench",
            "--",
            "--out",
        ])
        .arg(&out)
        .args(&passthrough)
        .current_dir(&root)
        .status()
        .map_err(|e| format!("cannot spawn microbench: {e}"))?;
    if !status.success() {
        return Err(format!("microbench exited with {status}"));
    }
    let written = root.join(&out);
    if !written.exists() {
        return Err(format!(
            "microbench wrote no report at {}",
            written.display()
        ));
    }
    match xtask::bench_gate::gate(&root, &written) {
        Ok(detail) => println!("bench gate: ok ({detail})"),
        Err(message) => {
            println!("bench gate: FAILED\n  {message}");
            return Ok(false);
        }
    }
    println!("bench: ok ({})", written.display());
    Ok(true)
}

fn cmd_lint(args: &[String]) -> Result<bool, String> {
    let opts = parse_opts(args, false, true)?;
    let mut diags = if opts.paths.is_empty() {
        workspace_findings()?
    } else {
        // Explicit paths bypass the workspace walker (and its
        // fixture/test exclusions) so the violation fixtures can be
        // linted directly.
        let mut files = Vec::new();
        for path in &opts.paths {
            let source =
                std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
            files.push((path.clone(), source));
        }
        lints::lint_workspace(&files, None)
    };
    if !opts.only.is_empty() {
        diags.retain(|d| opts.only.contains(&d.lint));
    }
    let ok = diags.is_empty();
    if opts.format == Format::Json {
        let layers = [LayerReport {
            name: "lints",
            status: if ok { "ok" } else { "failed" },
            detail: format!("{} finding(s)", diags.len()),
        }];
        println!("{}", json_report(ok, &layers, &diags));
    } else {
        for diag in &diags {
            println!("{diag}");
        }
        if ok {
            println!("lints: ok");
        } else {
            println!("lints: {} finding(s)", diags.len());
        }
    }
    Ok(ok)
}

/// Reads every lintable workspace source plus the trace contract test
/// and runs the full workspace analysis.
fn workspace_findings() -> Result<Vec<Diagnostic>, String> {
    let root = walk::workspace_root();
    let paths = walk::lintable_sources(&root).map_err(|e| format!("cannot walk sources: {e}"))?;
    let mut files = Vec::with_capacity(paths.len());
    for path in paths {
        let source =
            std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        files.push((path, source));
    }
    let trace_path = root.join("crates/bench/tests/trace.rs");
    let trace_source = std::fs::read_to_string(&trace_path).ok();
    let trace = trace_source
        .as_deref()
        .map(|source| (trace_path.as_path(), source));
    Ok(lints::lint_workspace(&files, trace))
}

fn skipped(name: &'static str) -> LayerReport {
    LayerReport {
        name,
        status: "skipped",
        detail: String::new(),
    }
}

fn tool_report(name: &'static str, outcome: tools::ToolOutcome, json: bool) -> (bool, LayerReport) {
    match outcome {
        tools::ToolOutcome::Passed => {
            if !json {
                println!("cargo {name}: ok");
            }
            (
                true,
                LayerReport {
                    name,
                    status: "ok",
                    detail: String::new(),
                },
            )
        }
        tools::ToolOutcome::Unavailable => {
            if !json {
                println!("cargo {name}: skipped (component not installed)");
            }
            (
                true,
                LayerReport {
                    name,
                    status: "unavailable",
                    detail: String::new(),
                },
            )
        }
        tools::ToolOutcome::Failed(output) => {
            if !json {
                println!("cargo {name}: FAILED");
                for line in output.lines().take(40) {
                    println!("  {line}");
                }
            }
            let detail: String = output.lines().take(10).collect::<Vec<_>>().join("\n");
            (
                false,
                LayerReport {
                    name,
                    status: "failed",
                    detail,
                },
            )
        }
    }
}

/// Renders the whole check as one JSON document.
fn json_report(ok: bool, layers: &[LayerReport], findings: &[Diagnostic]) -> String {
    let layer_objs: Vec<String> = layers
        .iter()
        .map(|l| {
            format!(
                "{{\"layer\":\"{}\",\"status\":\"{}\",\"detail\":\"{}\"}}",
                l.name,
                l.status,
                json_escape(&l.detail)
            )
        })
        .collect();
    let finding_objs: Vec<String> = findings.iter().map(Diagnostic::to_json).collect();
    format!(
        "{{\"ok\":{ok},\"layers\":[{}],\"findings\":[{}]}}",
        layer_objs.join(","),
        finding_objs.join(",")
    )
}
