//! `cargo xtask` — workspace checks.
//!
//! ```text
//! cargo xtask check [--skip LAYER]...   all layers (lints, fmt, clippy,
//!                                       determinism)
//! cargo xtask lint [PATH]...            custom source lints only; with no
//!                                       PATH, lints the whole workspace
//! ```
//!
//! Exit code 0 when every executed layer passes; 1 otherwise. Layer names
//! for `--skip`: `lints`, `fmt`, `clippy`, `determinism`.

use std::process::ExitCode;
use xtask::{audit, lints, tools, walk};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("check") => cmd_check(&args[1..]),
        Some("lint") => cmd_lint(&args[1..]),
        Some("--help") | Some("-h") | None => {
            print_usage();
            Ok(true)
        }
        Some(other) => Err(format!("unknown task '{other}' (try --help)")),
    };
    match result {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::from(2)
        }
    }
}

fn print_usage() {
    println!(
        "cargo xtask — workspace checks\n\n\
         USAGE:\n\
         \x20 cargo xtask check [--skip lints|fmt|clippy|determinism]...\n\
         \x20 cargo xtask lint [PATH]..."
    );
}

const LAYERS: &[&str] = &["lints", "fmt", "clippy", "determinism"];

fn cmd_check(args: &[String]) -> Result<bool, String> {
    let mut skip = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--skip" {
            let layer = it.next().ok_or("--skip needs a layer name")?;
            if !LAYERS.contains(&layer.as_str()) {
                return Err(format!("unknown layer '{layer}' (layers: {LAYERS:?})"));
            }
            skip.push(layer.clone());
        } else {
            return Err(format!("unknown flag '{arg}'"));
        }
    }
    let run = |layer: &str| !skip.iter().any(|s| s == layer);
    let root = walk::workspace_root();
    let mut ok = true;

    if run("lints") {
        ok &= run_lints()?;
    }
    if run("fmt") {
        ok &= report_tool("cargo fmt --check", tools::fmt_check(&root));
    }
    if run("clippy") {
        ok &= report_tool("cargo clippy", tools::clippy_check(&root));
    }
    if run("determinism") {
        println!("determinism: running the table harness serial vs 4-worker (seeded)...");
        match audit::run(&root) {
            Ok(report) => {
                println!(
                    "determinism: ok ({} bytes byte-identical; {} with fault injection; \
                     {} with serve workload; {} bytes of deterministic trace view)",
                    report.bytes, report.fault_bytes, report.serve_bytes, report.trace_bytes
                );
            }
            Err(message) => {
                println!("determinism: FAILED\n  {message}");
                ok = false;
            }
        }
    }

    println!("\nxtask check: {}", if ok { "ok" } else { "FAILED" });
    Ok(ok)
}

fn cmd_lint(args: &[String]) -> Result<bool, String> {
    if args.is_empty() {
        return run_lints();
    }
    // Explicit paths bypass the workspace walker (and its fixture/test
    // exclusions) so the violation fixtures can be linted directly.
    let files: Vec<std::path::PathBuf> = args.iter().map(std::path::PathBuf::from).collect();
    lint_files(&files)
}

fn run_lints() -> Result<bool, String> {
    let root = walk::workspace_root();
    let files = walk::lintable_sources(&root).map_err(|e| format!("cannot walk sources: {e}"))?;
    lint_files(&files)
}

fn lint_files(files: &[std::path::PathBuf]) -> Result<bool, String> {
    let mut count = 0usize;
    for file in files {
        let source =
            std::fs::read_to_string(file).map_err(|e| format!("{}: {e}", file.display()))?;
        for diag in lints::lint_source(file, &source) {
            println!("{diag}");
            count += 1;
        }
    }
    if count == 0 {
        println!("lints: ok ({} files)", files.len());
        Ok(true)
    } else {
        println!("lints: {count} finding(s) in {} files", files.len());
        Ok(false)
    }
}

fn report_tool(name: &str, outcome: tools::ToolOutcome) -> bool {
    match outcome {
        tools::ToolOutcome::Passed => {
            println!("{name}: ok");
            true
        }
        tools::ToolOutcome::Unavailable => {
            println!("{name}: skipped (component not installed)");
            true
        }
        tools::ToolOutcome::Failed(output) => {
            println!("{name}: FAILED");
            for line in output.lines().take(40) {
                println!("  {line}");
            }
            false
        }
    }
}
