//! Micro-benchmark regression gate for `cargo xtask bench`.
//!
//! The workspace keeps a trajectory of micro-benchmark reports
//! (`BENCH_<n>.json` at the workspace root). After a fresh run the gate
//! compares the new report against the *latest* committed baseline and
//! fails on any shared bench name whose throughput dropped by more than
//! [`TOLERANCE`] — a cheap tripwire against quietly pessimizing a
//! kernel while refactoring around it.
//!
//! The reports are the `microbench` binary's own output, so the parser
//! here is a deliberately tiny scanner over the
//! `pharmaverify-microbench-v1` schema (`"name"` / `"throughput_per_sec"`
//! pairs inside the `benches` array) rather than a JSON library.

use std::path::{Path, PathBuf};

/// Maximum tolerated throughput drop, as a fraction of the baseline.
/// A shared bench name regresses when
/// `fresh < (1 - TOLERANCE) * baseline`.
pub const TOLERANCE: f64 = 0.25;

/// One parsed bench row: `(name, throughput_per_sec)`.
pub type BenchRow = (String, f64);

/// Extracts `(name, throughput_per_sec)` pairs from a microbench
/// report. Unparsable rows are skipped — the gate only ever *compares*
/// rows, so a malformed row can weaken the gate but never wedge it.
pub fn parse_throughputs(json: &str) -> Vec<BenchRow> {
    let mut rows = Vec::new();
    let mut rest = json;
    while let Some(at) = rest.find("\"name\"") {
        rest = &rest[at + "\"name\"".len()..];
        let Some(name) = next_string(rest) else {
            continue;
        };
        // The throughput belongs to this row only if it appears before
        // the next row starts.
        let segment_end = rest.find("\"name\"").unwrap_or(rest.len());
        let segment = &rest[..segment_end];
        if let Some(t) = segment
            .find("\"throughput_per_sec\"")
            .and_then(|p| next_number(&segment[p + "\"throughput_per_sec\"".len()..]))
        {
            rows.push((name, t));
        }
    }
    rows
}

fn next_string(s: &str) -> Option<String> {
    let open = s.find('"')?;
    let rest = &s[open + 1..];
    let close = rest.find('"')?;
    Some(rest[..close].to_string())
}

fn next_number(s: &str) -> Option<f64> {
    let start = s.find(|c: char| c.is_ascii_digit() || c == '-' || c == '.')?;
    let rest = &s[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Compares a fresh run against a baseline and returns one message per
/// regressed shared bench name. Names present in only one report are
/// ignored — adding or retiring benches is not a regression.
pub fn regressions(baseline: &[BenchRow], fresh: &[BenchRow], tolerance: f64) -> Vec<String> {
    let mut failures = Vec::new();
    for (name, base) in baseline {
        let Some((_, new)) = fresh.iter().find(|(n, _)| n == name) else {
            continue;
        };
        if *base > 0.0 && *new < (1.0 - tolerance) * base {
            failures.push(format!(
                "{name}: throughput {new:.1}/s is {:.0}% below baseline {base:.1}/s",
                100.0 * (1.0 - new / base)
            ));
        }
    }
    failures
}

/// Finds the highest-numbered `BENCH_<n>.json` at the workspace root,
/// excluding `exclude` (the report the current run is about to write —
/// a report is never its own baseline).
pub fn latest_baseline(root: &Path, exclude: &Path) -> Option<PathBuf> {
    let mut best: Option<(u64, PathBuf)> = None;
    for entry in std::fs::read_dir(root).ok()?.flatten() {
        let path = entry.path();
        if path == exclude {
            continue;
        }
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        let Some(n) = name
            .strip_prefix("BENCH_")
            .and_then(|s| s.strip_suffix(".json"))
            .and_then(|s| s.parse::<u64>().ok())
        else {
            continue;
        };
        if best.as_ref().is_none_or(|(b, _)| n > *b) {
            best = Some((n, path));
        }
    }
    best.map(|(_, path)| path)
}

/// Runs the gate: fresh report at `out`, baseline auto-discovered at
/// the workspace root. Returns a human summary on pass, the list of
/// regressions on fail. A missing baseline or an unparsable report
/// passes with a note — the first run of a new trajectory has nothing
/// to compare against.
pub fn gate(root: &Path, out: &Path) -> Result<String, String> {
    let Some(baseline_path) = latest_baseline(root, out) else {
        return Ok("no BENCH_<n>.json baseline to compare against".to_string());
    };
    let read = |path: &Path| {
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))
    };
    let baseline = parse_throughputs(&read(&baseline_path)?);
    let fresh = parse_throughputs(&read(out)?);
    let shared = baseline
        .iter()
        .filter(|(n, _)| fresh.iter().any(|(m, _)| m == n))
        .count();
    if shared == 0 {
        return Ok(format!(
            "no shared bench names with {}",
            baseline_path.display()
        ));
    }
    let failures = regressions(&baseline, &fresh, TOLERANCE);
    if failures.is_empty() {
        Ok(format!(
            "{shared} shared bench name(s) within {:.0}% of {}",
            100.0 * TOLERANCE,
            baseline_path.display()
        ))
    } else {
        Err(format!(
            "throughput regressed >{:.0}% vs {}:\n  {}",
            100.0 * TOLERANCE,
            baseline_path.display(),
            failures.join("\n  ")
        ))
    }
}
