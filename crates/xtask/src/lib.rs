//! Workspace maintenance tasks (`cargo xtask …`).
//!
//! The binary front end lives in `main.rs`; the checking layers are
//! libraries so the self-tests can drive them against fixture files:
//!
//! * [`tokens`] — the string/comment-aware Rust tokenizer and the
//!   per-file item/block model every analysis shares;
//! * [`lints`] — token-level source lints (no-panic, hash-iter,
//!   float-eq, safety-comment, no-raw-eprintln, nondet, obs-name) with
//!   a marker-based allowlist;
//! * [`callgraph`] — the conservative name-per-crate call graph;
//! * [`locks`] — the workspace lock-order (deadlock-shape) analysis;
//! * [`walk`] — workspace file discovery shared by the lint layer;
//! * [`audit`] — the determinism audit: run the table harness twice with
//!   the same seed and require byte-identical output;
//! * [`tools`] — wiring for `cargo fmt --check` and `cargo clippy`,
//!   degrading gracefully when a component is not installed.

pub mod audit;
pub mod bench_gate;
pub mod callgraph;
pub mod lints;
pub mod locks;
pub mod tokens;
pub mod tools;
pub mod walk;
