//! Workspace maintenance tasks (`cargo xtask …`).
//!
//! The binary front end lives in `main.rs`; the checking layers are
//! libraries so the self-tests can drive them against fixture files:
//!
//! * [`lints`] — custom source lints (no-panic, hash-iter, float-eq,
//!   safety-comment) with a marker-based allowlist;
//! * [`walk`] — workspace file discovery shared by the lint layer;
//! * [`audit`] — the determinism audit: run the table harness twice with
//!   the same seed and require byte-identical output;
//! * [`tools`] — wiring for `cargo fmt --check` and `cargo clippy`,
//!   degrading gracefully when a component is not installed.

pub mod audit;
pub mod lints;
pub mod tools;
pub mod walk;
