//! Lint fixture: near-miss patterns that must stay quiet. Test data for
//! the xtask self-tests — never compiled into any crate.

use std::collections::{BTreeMap, HashMap, HashSet};

fn panics_only_in_disguise(x: Option<u32>) -> u32 {
    // Fallback combinators are fine; only the panicking forms are banned.
    let a = x.unwrap_or(0);
    let b = x.unwrap_or_else(|| 7);
    let c = x.unwrap_or_default();
    // Pattern text inside string literals is data, not code.
    let s = "call .unwrap() and panic! freely in prose";
    let r = r#"raw .expect( too"#;
    a + b + c + s.len() as u32 + r.len() as u32
}

// lint:allow(no-panic): fixture demonstrating a justified, documented site.
fn allowed_site(x: Option<u32>) -> u32 {
    x.unwrap()
}

fn ordered_iteration(report: &mut Vec<String>) {
    // BTreeMap iterates in key order — deterministic, no finding.
    let sorted: BTreeMap<String, usize> = BTreeMap::new();
    for (key, value) in &sorted {
        report.push(format!("{key}={value}"));
    }
    // Hash collections used for lookup only are fine.
    let index: HashMap<String, usize> = HashMap::new();
    let _ = index.get("x");
    let seen: HashSet<u32> = HashSet::new();
    let _ = seen.contains(&3);
    // Iteration is fine when visibly sorted before emission.
    let mut keys: Vec<&String> = index.keys().collect();
    keys.sort();
}

fn zero_comparisons(v: f64) -> bool {
    // Zero is exact for sparse data; ordered comparisons are always fine.
    v != 0.0 && v > 0.5 && v < 2.5
}

fn documented_unsafe(p: *const u32) -> u32 {
    // SAFETY: the caller guarantees `p` points at a live, aligned u32.
    unsafe { *p }
}

fn stderr_only_in_disguise() -> usize {
    // The macro name inside string literals or comments is data, not a
    // call: eprintln! here must not fire.
    let doc = "diagnostics go through obs, not eprintln!(...)";
    // lint:allow(no-raw-eprintln): fixture demonstrating a justified site.
    eprintln!("documented exception");
    doc.len()
}

// Regression: the sort may close a multiline chain statement instead of
// sharing the iteration's line (collect-then-sort across lines).
fn collect_then_sort_multiline(counts: HashMap<String, usize>) -> Vec<(String, usize)> {
    let mut rows: Vec<(String, usize)> = counts
        .into_iter()
        .collect();
    rows.sort();
    rows
}

// Regression: `item.iter()` must stay quiet even though hash-typed `m`
// exists and `"m.iter()"` is a substring of `"item.iter()"`.
fn exact_receiver_resolution(report: &mut Vec<String>) {
    let m: HashMap<u32, u32> = HashMap::new();
    let item: Vec<u32> = vec![1];
    for v in item.iter() {
        report.push((v + m.get(v).copied().unwrap_or(0)).to_string());
    }
}

/// Regression: doc-comment prose and fenced examples are comments, not
/// code — `x.unwrap()`, `panic!`, `for k in m.iter()`, `score == 0.75`,
/// and `eprintln!` here must all stay quiet.
fn documented(x: u32) -> u32 {
    x
}

// Reading any variable inside a `from_env*` constructor is the blessed
// configuration pattern.
fn from_env_default() -> Option<String> {
    std::env::var("FIXTURE_ANYTHING").ok()
}

const JOBS_ENV: &str = "PHARMAVERIFY_JOBS";

fn blessed_env_names() {
    // `PHARMAVERIFY_*` names are blessed, literally or via a const.
    let _ = std::env::var("PHARMAVERIFY_SCALE");
    let _ = std::env::var(JOBS_ENV);
}

fn seeded_rng_is_fine() -> u64 {
    // Explicit seeds replay; only entropy-derived construction is flagged.
    let mut rng = SmallRng::seed_from_u64(7);
    let mut rng2 = StdRng::from_seed([0u8; 32]);
    rng.next_u64() ^ rng2.next_u64()
}

// lint:allow(nondet): fixture demonstrating a justified wall-clock read.
fn allowed_clock_read() -> std::time::Instant {
    std::time::Instant::now()
}

fn obs_clean_sites(obs: &Registry) {
    // Literal, well-formed, kind-consistent paths are the contract.
    obs.add("fixture/clean/counter", 1);
    obs.observe("fixture/clean/histogram", 3);
    let _span = obs.span("fixture/clean/span");
    // lint:allow(obs-name): fixture demonstrating a justified dynamic path.
    obs.add(&format!("fixture/clean/{}", 1), 1);
}

fn obs_like_methods_on_other_receivers(a: &SparseVector, b: &SparseVector) -> SparseVector {
    // `.add(…)` on a non-obs receiver is vector arithmetic, not a metric.
    a.add(b)
}

#[cfg(test)]
mod tests {
    // Test code unwraps freely.
    #[test]
    fn tests_may_unwrap() {
        let x: Option<u32> = Some(1);
        assert_eq!(x.unwrap(), 1);
        let m: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
        for (k, v) in &m {
            assert!(k <= v);
        }
        assert!(0.75 == 0.75);
        // Nondeterminism is fine in tests too.
        let _ = std::time::Instant::now();
    }
}
