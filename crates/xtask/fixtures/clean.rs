//! Lint fixture: near-miss patterns that must stay quiet. Test data for
//! the xtask self-tests — never compiled into any crate.

use std::collections::{BTreeMap, HashMap, HashSet};

fn panics_only_in_disguise(x: Option<u32>) -> u32 {
    // Fallback combinators are fine; only the panicking forms are banned.
    let a = x.unwrap_or(0);
    let b = x.unwrap_or_else(|| 7);
    let c = x.unwrap_or_default();
    // Pattern text inside string literals is data, not code.
    let s = "call .unwrap() and panic! freely in prose";
    let r = r#"raw .expect( too"#;
    a + b + c + s.len() as u32 + r.len() as u32
}

// lint:allow(no-panic): fixture demonstrating a justified, documented site.
fn allowed_site(x: Option<u32>) -> u32 {
    x.unwrap()
}

fn ordered_iteration(report: &mut Vec<String>) {
    // BTreeMap iterates in key order — deterministic, no finding.
    let sorted: BTreeMap<String, usize> = BTreeMap::new();
    for (key, value) in &sorted {
        report.push(format!("{key}={value}"));
    }
    // Hash collections used for lookup only are fine.
    let index: HashMap<String, usize> = HashMap::new();
    let _ = index.get("x");
    let seen: HashSet<u32> = HashSet::new();
    let _ = seen.contains(&3);
    // Iteration is fine when visibly sorted before emission.
    let mut keys: Vec<&String> = index.keys().collect();
    keys.sort();
}

fn zero_comparisons(v: f64) -> bool {
    // Zero is exact for sparse data; ordered comparisons are always fine.
    v != 0.0 && v > 0.5 && v < 2.5
}

fn documented_unsafe(p: *const u32) -> u32 {
    // SAFETY: the caller guarantees `p` points at a live, aligned u32.
    unsafe { *p }
}

fn stderr_only_in_disguise() -> usize {
    // The macro name inside string literals or comments is data, not a
    // call: eprintln! here must not fire.
    let doc = "diagnostics go through obs, not eprintln!(...)";
    // lint:allow(no-raw-eprintln): fixture demonstrating a justified site.
    eprintln!("documented exception");
    doc.len()
}

#[cfg(test)]
mod tests {
    // Test code unwraps freely.
    #[test]
    fn tests_may_unwrap() {
        let x: Option<u32> = Some(1);
        assert_eq!(x.unwrap(), 1);
        let m: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
        for (k, v) in &m {
            assert!(k <= v);
        }
        assert!(0.75 == 0.75);
    }
}
