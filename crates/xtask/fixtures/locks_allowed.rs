//! Lock-order fixture: the same ABBA shape as `locks_abba.rs`, with
//! every inner acquisition carrying a reasoned `lint:allow(lock-order)`
//! marker — the analysis must stay silent. Test data for the xtask
//! self-tests — never compiled into any crate.

use std::sync::{Mutex, PoisonError};

static ORDER_A: Mutex<u64> = Mutex::new(0);
static ORDER_B: Mutex<u64> = Mutex::new(0);

fn transfer_ab() -> u64 {
    let a = ORDER_A.lock().unwrap_or_else(PoisonError::into_inner);
    // lint:allow(lock-order): fixture demonstrating a documented, audited pairing.
    let b = ORDER_B.lock().unwrap_or_else(PoisonError::into_inner);
    *a + *b
}

fn transfer_ba() -> u64 {
    let b = ORDER_B.lock().unwrap_or_else(PoisonError::into_inner);
    // lint:allow(lock-order): fixture demonstrating a documented, audited pairing.
    let a = ORDER_A.lock().unwrap_or_else(PoisonError::into_inner);
    *a + *b
}
