//! Lock-order fixture: a genuine ABBA deadlock shape, in two flavors.
//! Test data for the xtask self-tests — never compiled into any crate.
//!
//! The self-test requires the analysis to report a lock-order cycle for
//! both the direct two-function ABBA and the cycle that only closes
//! through the call graph; losing either detection fails the suite (and
//! the CI deadlock-canary step).

use std::sync::Mutex;

static ORDER_A: Mutex<u64> = Mutex::new(0);
static ORDER_B: Mutex<u64> = Mutex::new(0);

// Direct ABBA: one thread runs `transfer_ab`, another `transfer_ba`,
// each blocks on the lock the other holds.
fn transfer_ab() -> u64 {
    let a = ORDER_A.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let b = ORDER_B.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    *a + *b
}

fn transfer_ba() -> u64 {
    let b = ORDER_B.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let a = ORDER_A.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    *a + *b
}

static ORDER_C: Mutex<u64> = Mutex::new(0);
static ORDER_D: Mutex<u64> = Mutex::new(0);

// Call-graph ABBA: neither function takes both locks itself; the cycle
// only appears once the callee's acquisitions propagate to the caller.
fn with_c_then_touch_d() -> u64 {
    let c = ORDER_C.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    *c + touch_d()
}

fn touch_d() -> u64 {
    *ORDER_D.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn with_d_then_touch_c() -> u64 {
    let d = ORDER_D.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    *d + touch_c()
}

fn touch_c() -> u64 {
    *ORDER_C.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

// Self-deadlock: reacquiring a non-reentrant lock while holding it.
static ORDER_E: Mutex<u64> = Mutex::new(0);

fn reacquire_e() -> u64 {
    let first = ORDER_E.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let second = ORDER_E.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    *first + *second
}
