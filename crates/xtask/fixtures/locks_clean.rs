//! Lock-order fixture: disciplined locking patterns that must produce
//! zero findings. Test data for the xtask self-tests — never compiled
//! into any crate.

use std::sync::{Mutex, PoisonError, RwLock};

static FIRST: Mutex<u64> = Mutex::new(0);
static SECOND: RwLock<u64> = RwLock::new(0);

// Consistent order everywhere: FIRST before SECOND, never the reverse.
fn read_both() -> u64 {
    let a = FIRST.lock().unwrap_or_else(PoisonError::into_inner);
    let b = SECOND.read().unwrap_or_else(PoisonError::into_inner);
    *a + *b
}

fn write_both() {
    let mut a = FIRST.lock().unwrap_or_else(PoisonError::into_inner);
    let mut b = SECOND.write().unwrap_or_else(PoisonError::into_inner);
    *a += 1;
    *b += 1;
}

// Releasing before the next acquisition breaks any would-be edge:
// an explicit drop …
fn drop_then_take() -> u64 {
    let b = SECOND.read().unwrap_or_else(PoisonError::into_inner);
    let snapshot = *b;
    drop(b);
    let a = FIRST.lock().unwrap_or_else(PoisonError::into_inner);
    *a + snapshot
}

// … a block scope …
fn scope_then_take() -> u64 {
    let snapshot = {
        let b = SECOND.read().unwrap_or_else(PoisonError::into_inner);
        *b
    };
    let a = FIRST.lock().unwrap_or_else(PoisonError::into_inner);
    *a + snapshot
}

// … or a temporary guard that dies with its own statement.
fn statement_then_take() -> u64 {
    let snapshot = *SECOND.read().unwrap_or_else(PoisonError::into_inner);
    let a = FIRST.lock().unwrap_or_else(PoisonError::into_inner);
    *a + snapshot
}

// Locks reached through a non-`self` parameter have no stable identity
// here; the caller's own scan covers its acquisition order.
fn helper(shared: &Mutex<u64>) -> u64 {
    *shared.lock().unwrap_or_else(PoisonError::into_inner)
}
