//! Lint fixture: every expectation comment below must match exactly one
//! diagnostic of the named lint. This file is test data for the xtask
//! self-tests — it is never compiled into any crate.

use std::collections::{HashMap, HashSet};

fn no_panic_sites(x: Option<u32>, r: Result<u32, String>) -> u32 {
    let a = x.unwrap(); // VIOLATION no-panic
    let b = r.expect("must parse"); // VIOLATION no-panic
    if a > b {
        panic!("impossible"); // VIOLATION no-panic
    }
    unreachable!() // VIOLATION no-panic
}

fn hash_iteration(report: &mut Vec<String>) {
    let mut counts: HashMap<String, usize> = HashMap::new();
    counts.insert("a".to_string(), 1);
    for (key, value) in counts.iter() {
        // VIOLATION hash-iter (previous line)
        report.push(format!("{key}={value}"));
    }
    let seen: HashSet<u32> = HashSet::new();
    for item in &seen {
        // VIOLATION hash-iter (previous line)
        report.push(item.to_string());
    }
}

fn float_equality(score: f64) -> bool {
    if score == 0.75 {
        // VIOLATION float-eq (previous line)
        return true;
    }
    score != 1.5 // VIOLATION float-eq
}

fn undocumented_unsafe(p: *const u32) -> u32 {
    unsafe { *p } // VIOLATION safety-comment
}

fn raw_stderr_reporting(pages: usize) {
    eprintln!("crawled {pages} pages"); // VIOLATION no-raw-eprintln
}

// lint:allow(no-panic) VIOLATION bad-allow (missing `: reason`)
fn marker_without_reason(x: Option<u32>) -> u32 {
    x.unwrap() // VIOLATION no-panic (the reasonless marker does not count)
}

fn nondeterminism_sources() -> u64 {
    let started = std::time::Instant::now(); // VIOLATION nondet
    let stamp = std::time::SystemTime::now(); // VIOLATION nondet
    let who = std::thread::current().id(); // VIOLATION nondet
    let home = std::env::var("HOME"); // VIOLATION nondet
    let mut rng = SmallRng::from_entropy(); // VIOLATION nondet
    let _ = (started, stamp, who, home, rng.next_u64());
    0
}

fn obs_path_problems(obs: &Registry, stage: &str) {
    obs.add(&format!("fixture/cache/{stage}/hits"), 1); // VIOLATION obs-name (dynamic path)
    obs.add("fixture//double", 1); // VIOLATION obs-name (empty segment)
    obs.add("fixture/conflict", 1);
    obs.observe("fixture/conflict", 2); // VIOLATION obs-name (counter vs histogram)
    obs.add("fixture/mixed", 1);
    obs.add_nondet("fixture/mixed", 1); // VIOLATION obs-name (det vs nondet)
}

// Regression: a compact single-line test module must not leave the rest
// of the file marked as test code (the old engine counted braces by
// line and lost track here).
#[cfg(test)]
mod compact_tests { fn t() { let x: Option<u32> = None; let _ = x.unwrap(); } }

fn after_compact_test_module(x: Option<u32>) -> u32 {
    x.unwrap() // VIOLATION no-panic
}
