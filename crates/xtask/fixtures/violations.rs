//! Lint fixture: every expectation comment below must match exactly one
//! diagnostic of the named lint. This file is test data for the xtask
//! self-tests — it is never compiled into any crate.

use std::collections::{HashMap, HashSet};

fn no_panic_sites(x: Option<u32>, r: Result<u32, String>) -> u32 {
    let a = x.unwrap(); // VIOLATION no-panic
    let b = r.expect("must parse"); // VIOLATION no-panic
    if a > b {
        panic!("impossible"); // VIOLATION no-panic
    }
    unreachable!() // VIOLATION no-panic
}

fn hash_iteration(report: &mut Vec<String>) {
    let mut counts: HashMap<String, usize> = HashMap::new();
    counts.insert("a".to_string(), 1);
    for (key, value) in counts.iter() {
        // VIOLATION hash-iter (previous line)
        report.push(format!("{key}={value}"));
    }
    let seen: HashSet<u32> = HashSet::new();
    for item in &seen {
        // VIOLATION hash-iter (previous line)
        report.push(item.to_string());
    }
}

fn float_equality(score: f64) -> bool {
    if score == 0.75 {
        // VIOLATION float-eq (previous line)
        return true;
    }
    score != 1.5 // VIOLATION float-eq
}

fn undocumented_unsafe(p: *const u32) -> u32 {
    unsafe { *p } // VIOLATION safety-comment
}

fn raw_stderr_reporting(pages: usize) {
    eprintln!("crawled {pages} pages"); // VIOLATION no-raw-eprintln
}

// lint:allow(no-panic) VIOLATION bad-allow (missing `: reason`)
fn marker_without_reason(x: Option<u32>) -> u32 {
    x.unwrap() // VIOLATION no-panic (the reasonless marker does not count)
}
