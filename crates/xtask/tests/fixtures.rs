//! Self-tests of the custom lints against fixture files.
//!
//! `fixtures/violations.rs` is self-describing: every line that must
//! fire carries a `VIOLATION <lint-name>` comment (a `(previous line)`
//! suffix anchors the expectation one line up, for findings inside a
//! `for` header whose marker sits in the loop body). The test derives
//! the expected `(line, lint)` set from those comments and requires the
//! lint output to match it exactly — no missing findings, no extras.
//! `fixtures/clean.rs` collects near-miss patterns and must stay silent.

use std::path::{Path, PathBuf};
use xtask::lints::{lint_source, Diagnostic, Lint};

fn fixture(name: &str) -> (PathBuf, String) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    let source = std::fs::read_to_string(&path).unwrap();
    (path, source)
}

/// Parses `VIOLATION <name>` expectation comments out of fixture source.
fn expected_findings(source: &str) -> Vec<(usize, Lint)> {
    let mut expected = Vec::new();
    for (idx, line) in source.lines().enumerate() {
        let Some(rest) = line.split("VIOLATION ").nth(1) else {
            continue;
        };
        let name = rest.split_whitespace().next().unwrap();
        let lint = Lint::from_name(name)
            .or_else(|| (name == "bad-allow").then_some(Lint::BadAllow))
            .unwrap_or_else(|| panic!("unknown lint in expectation: {name}"));
        let line_no = if rest.contains("(previous line)") {
            idx // 1-based previous line == 0-based current index
        } else {
            idx + 1
        };
        expected.push((line_no, lint));
    }
    expected.sort_by_key(|&(l, _)| l);
    expected
}

fn findings(diags: &[Diagnostic]) -> Vec<(usize, Lint)> {
    let mut got: Vec<(usize, Lint)> = diags.iter().map(|d| (d.line, d.lint)).collect();
    got.sort_by_key(|&(l, _)| l);
    got
}

#[test]
fn violations_fixture_fires_every_lint() {
    let (path, source) = fixture("violations.rs");
    let diags = lint_source(&path, &source);
    let expected = expected_findings(&source);
    assert_eq!(
        findings(&diags),
        expected,
        "diagnostics:\n{}",
        diags
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
    // Every lint is exercised at least once (lock-order has its own
    // fixture trio driven by tests/locks.rs).
    for lint in [
        Lint::NoPanic,
        Lint::HashIter,
        Lint::FloatEq,
        Lint::SafetyComment,
        Lint::NoRawEprintln,
        Lint::Nondet,
        Lint::ObsName,
        Lint::BadAllow,
    ] {
        assert!(
            diags.iter().any(|d| d.lint == lint),
            "fixture never fires {lint}"
        );
    }
}

#[test]
fn clean_fixture_stays_quiet() {
    let (path, source) = fixture("clean.rs");
    let diags = lint_source(&path, &source);
    assert!(
        diags.is_empty(),
        "clean fixture produced:\n{}",
        diags
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn diagnostics_render_file_line_and_lint() {
    let (path, source) = fixture("violations.rs");
    let diags = lint_source(&path, &source);
    let rendered = diags[0].to_string();
    assert!(rendered.contains("violations.rs:"));
    assert!(rendered.contains("[no-panic]"));
}

#[test]
fn binaries_are_exempt_from_no_raw_eprintln() {
    let src = "fn main() {\n    eprintln!(\"progress to the user\");\n}\n";
    for path in ["src/main.rs", "crates/bench/src/bin/repro.rs"] {
        assert!(
            lint_source(Path::new(path), src).is_empty(),
            "{path} should be exempt"
        );
    }
    let diags = lint_source(Path::new("crates/crawl/src/crawler.rs"), src);
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].lint, Lint::NoRawEprintln);
}

#[test]
fn whole_workspace_is_lint_clean() {
    let root = xtask::walk::workspace_root();
    let paths = xtask::walk::lintable_sources(&root).unwrap();
    assert!(paths.len() > 50, "walker found only {} files", paths.len());
    let files: Vec<(PathBuf, String)> = paths
        .into_iter()
        .map(|p| {
            let source = std::fs::read_to_string(&p).unwrap();
            (p, source)
        })
        .collect();
    // The full workspace analysis, exactly as `cargo xtask check` runs
    // it: per-file lints, cross-file obs conflicts, the trace-contract
    // cross-check, and the whole-workspace lock-order pass.
    let trace_path = root.join("crates/bench/tests/trace.rs");
    let trace_source = std::fs::read_to_string(&trace_path).unwrap();
    let all =
        xtask::lints::lint_workspace(&files, Some((trace_path.as_path(), trace_source.as_str())));
    assert!(
        all.is_empty(),
        "workspace has lint findings:\n{}",
        all.iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
