//! Self-test of the `cargo xtask bench` regression gate against two
//! fixture reports: a baseline and a run where one kernel's throughput
//! halved. The gate must flag exactly the halved bench, tolerate
//! within-noise drift, and ignore benches present in only one report.

use xtask::bench_gate::{latest_baseline, parse_throughputs, regressions, TOLERANCE};

const BASELINE: &str = include_str!("bench_fixtures/baseline.json");
const REGRESSED: &str = include_str!("bench_fixtures/regressed.json");

#[test]
fn parser_extracts_name_throughput_pairs() {
    let rows = parse_throughputs(BASELINE);
    assert_eq!(rows.len(), 4);
    assert_eq!(rows[0].0, "csr/trust_rank");
    assert!((rows[0].1 - 142_289_877.3).abs() < 1.0);
    assert_eq!(rows[3].0, "legacy/retired_bench");
}

#[test]
fn gate_flags_only_the_halved_bench() {
    let baseline = parse_throughputs(BASELINE);
    let fresh = parse_throughputs(REGRESSED);
    let failures = regressions(&baseline, &fresh, TOLERANCE);
    assert_eq!(failures.len(), 1, "{failures:?}");
    assert!(
        failures[0].starts_with("csr/trust_rank:"),
        "{}",
        failures[0]
    );
    // Within-noise drift (pagerank −2%, anti_trust_rank +10%) passes,
    // and the retired/new benches are not shared so they never count.
    assert!(!failures.iter().any(|f| f.contains("pagerank")));
    assert!(!failures.iter().any(|f| f.contains("retired")));
    assert!(!failures.iter().any(|f| f.contains("brand_new")));
}

#[test]
fn gate_passes_a_report_against_itself() {
    let rows = parse_throughputs(BASELINE);
    assert!(regressions(&rows, &rows, TOLERANCE).is_empty());
}

#[test]
fn latest_baseline_picks_highest_number_and_skips_the_fresh_report() {
    let dir = std::env::temp_dir().join(format!("pharmaverify-gate-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    for name in [
        "BENCH_2.json",
        "BENCH_10.json",
        "BENCH_11.json",
        "notes.json",
    ] {
        std::fs::write(dir.join(name), BASELINE).expect("write");
    }
    let fresh = dir.join("BENCH_11.json");
    let picked = latest_baseline(&dir, &fresh).expect("baseline");
    assert_eq!(picked, dir.join("BENCH_10.json"));
    std::fs::remove_dir_all(&dir).expect("cleanup");
}
