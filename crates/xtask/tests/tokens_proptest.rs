//! Property-based tests for the lint tokenizer: the whole analysis
//! stack trusts two invariants — lexing loses no bytes (round-trip),
//! and text inside string literals or comments never surfaces as code
//! tokens.

use proptest::prelude::*;
use xtask::tokens::{lex, TokenKind};

/// Joins every token's text back into one string.
fn rejoin(tokens: &[xtask::tokens::Token]) -> String {
    tokens.iter().map(|t| t.text.as_str()).collect()
}

/// Joins only the tokens code analysis would look at (everything except
/// the given kind), preserving order.
fn rejoin_except(tokens: &[xtask::tokens::Token], skip: TokenKind) -> String {
    tokens
        .iter()
        .filter(|t| t.kind != skip)
        .map(|t| t.text.as_str())
        .collect()
}

proptest! {
    /// Concatenating all token text reproduces the input byte-for-byte,
    /// for arbitrary (even non-Rust) input.
    #[test]
    fn lex_round_trips_arbitrary_input(input in ".{0,300}") {
        prop_assert_eq!(rejoin(&lex(&input)), input);
    }

    /// Same round-trip over a code-shaped alphabet that stresses the
    /// tricky boundaries: quotes, comment starters, raw strings,
    /// lifetimes, floats, and punctuation runs.
    #[test]
    fn lex_round_trips_code_like_input(
        input in r#"[a-zA-Z0-9_ \t\n"'#./*=!<>&|;:,(){}\[\]+-]{0,300}"#
    ) {
        prop_assert_eq!(rejoin(&lex(&input)), input);
    }

    /// A string literal lexes as ONE `Str` token: the surrounding code
    /// tokens are exactly the frame, so nothing inside the quotes can
    /// ever look like a call or keyword to the lints.
    #[test]
    fn string_contents_never_become_code(content in r"[a-zA-Z0-9_ .!?&|=<>()+-]{0,60}") {
        let source = format!("let s = \"{content}\";");
        let tokens = lex(&source);
        let strs: Vec<_> = tokens.iter().filter(|t| t.kind == TokenKind::Str).collect();
        prop_assert_eq!(strs.len(), 1);
        prop_assert_eq!(&strs[0].text, &format!("\"{content}\""));
        prop_assert_eq!(rejoin_except(&tokens, TokenKind::Str), "let s = ;");
    }

    /// Line-comment contents are one comment token; the code seen by
    /// the lints is exactly the statement before the `//`.
    #[test]
    fn line_comment_contents_never_become_code(content in r"[a-zA-Z0-9_ .!?&|=<>()+-]{0,60}") {
        let source = format!("let x = 1; //{content}\n");
        let tokens = lex(&source);
        prop_assert_eq!(
            tokens.iter().filter(|t| t.kind == TokenKind::LineComment).count(),
            1
        );
        prop_assert_eq!(
            rejoin_except(&tokens, TokenKind::LineComment),
            "let x = 1; \n"
        );
    }

    /// Block-comment contents (no `*`/`/`, so the body cannot open or
    /// close a nesting level) are one comment token.
    #[test]
    fn block_comment_contents_never_become_code(content in r"[a-zA-Z0-9_ .!?&|=<>()+-]{0,60}") {
        let source = format!("let x = 1; /*{content}*/ let y = 2;");
        let tokens = lex(&source);
        prop_assert_eq!(
            tokens.iter().filter(|t| t.kind == TokenKind::BlockComment).count(),
            1
        );
        prop_assert_eq!(
            rejoin_except(&tokens, TokenKind::BlockComment),
            "let x = 1;  let y = 2;"
        );
    }

    /// No lexer output token is ever empty (an empty token would stall
    /// any consumer that advances by token length).
    #[test]
    fn no_empty_tokens(input in ".{0,200}") {
        prop_assert!(lex(&input).iter().all(|t| !t.text.is_empty()));
    }
}
