//! Self-tests of the lock-order analysis against its fixtures.
//!
//! `locks_abba.rs` holds genuine deadlock shapes the analysis must
//! catch (the CI deadlock-canary step re-checks the same fixture);
//! `locks_clean.rs` holds disciplined patterns that must stay quiet;
//! `locks_allowed.rs` is the ABBA shape with reasoned suppressions.

use std::path::{Path, PathBuf};
use xtask::lints::{lint_source, Diagnostic, Lint};

fn fixture(name: &str) -> (PathBuf, String) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    let source = std::fs::read_to_string(&path).unwrap();
    (path, source)
}

fn lock_findings(name: &str) -> Vec<Diagnostic> {
    let (path, source) = fixture(name);
    lint_source(&path, &source)
        .into_iter()
        .filter(|d| d.lint == Lint::LockOrder)
        .collect()
}

#[test]
fn abba_fixture_deadlocks_are_caught() {
    let diags = lock_findings("locks_abba.rs");
    let rendered: Vec<String> = diags.iter().map(ToString::to_string).collect();
    // Direct ABBA: both closing edges (A→B and B→A) are reported.
    assert!(
        rendered
            .iter()
            .any(|d| d.contains("ORDER_B") && d.contains("ORDER_A") && d.contains("cycle")),
        "direct ABBA not reported: {rendered:?}"
    );
    // Call-graph ABBA: the C/D cycle only exists through callees.
    assert!(
        rendered
            .iter()
            .any(|d| d.contains("ORDER_C") && d.contains("ORDER_D")),
        "call-graph ABBA not reported: {rendered:?}"
    );
    // Self-deadlock: reacquiring E while holding it.
    assert!(
        rendered
            .iter()
            .any(|d| d.contains("reacquiring") && d.contains("ORDER_E")),
        "reacquire deadlock not reported: {rendered:?}"
    );
    // Nothing else in the fixture is a finding.
    assert_eq!(diags.len(), 5, "{rendered:?}");
}

#[test]
fn disciplined_locking_is_quiet() {
    let diags = lock_findings("locks_clean.rs");
    assert!(
        diags.is_empty(),
        "clean lock fixture produced: {:?}",
        diags.iter().map(ToString::to_string).collect::<Vec<_>>()
    );
}

#[test]
fn reasoned_suppressions_silence_the_cycle() {
    let diags = lock_findings("locks_allowed.rs");
    assert!(
        diags.is_empty(),
        "allowed lock fixture produced: {:?}",
        diags.iter().map(ToString::to_string).collect::<Vec<_>>()
    );
    // The markers themselves are well-formed (no bad-allow findings).
    let (path, source) = fixture("locks_allowed.rs");
    assert!(
        lint_source(&path, &source)
            .iter()
            .all(|d| d.lint != Lint::BadAllow),
        "suppression markers must parse"
    );
}

#[test]
fn the_deadlock_canary_fails_loudly_if_blinded() {
    // CI greps for this exact behavior: the ABBA fixture linted through
    // the public entry point yields at least one lock-order finding.
    let (path, source) = fixture("locks_abba.rs");
    let count = lint_source(&path, &source)
        .iter()
        .filter(|d| d.lint == Lint::LockOrder)
        .count();
    assert!(count >= 3, "only {count} lock-order findings");
}
