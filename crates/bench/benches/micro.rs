//! Criterion micro-benchmarks of the hot substrate paths: HTML
//! extraction, crawling, tokenization, TF-IDF fitting, n-gram-graph
//! construction and similarity, TrustRank propagation, and the
//! classifier training loops.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use pharmaverify_core::classify::build_web_graph;
use pharmaverify_core::features::extract_corpus;
use pharmaverify_corpus::{CorpusConfig, SyntheticWeb};
use pharmaverify_crawl::{html, CrawlConfig, Crawler, Url};
use pharmaverify_ml::{Dataset, DecisionTree, Learner, LinearSvm, MultinomialNaiveBayes, Sampling};
use pharmaverify_net::TrustRankConfig;
use pharmaverify_ngg::{GraphSimilarities, NGramGraphBuilder};
use pharmaverify_text::{preprocess, TfIdfModel};

fn sample_page() -> String {
    let mut body = String::from("<html><head><title>pharmacy</title></head><body>");
    for i in 0..50 {
        body.push_str(&format!(
            "<p>prescription refill pharmacist insurance policy number {i} \
             medication dosage tablet capsule treatment</p>\
             <a href=\"/page{i}.html\">section {i}</a>"
        ));
    }
    body.push_str("</body></html>");
    body
}

fn bench_html(c: &mut Criterion) {
    let page = sample_page();
    c.bench_function("html_extract_50p", |b| b.iter(|| html::extract(&page)));
}

fn bench_crawl(c: &mut Criterion) {
    let web = SyntheticWeb::generate(&CorpusConfig::small(), 11);
    let snap = web.snapshot().clone();
    let crawler = Crawler::new(CrawlConfig::default());
    let seed = Url::parse(&snap.sites[0].seed_url).unwrap();
    c.bench_function("crawl_one_site", |b| {
        b.iter(|| crawler.crawl(&snap.web, &seed))
    });
}

fn bench_text(c: &mut Criterion) {
    let page = sample_page();
    let text = html::extract(&page).text;
    c.bench_function("preprocess_page", |b| b.iter(|| preprocess(&text)));

    let web = SyntheticWeb::generate(&CorpusConfig::small(), 12);
    let corpus = extract_corpus(web.snapshot(), &CrawlConfig::default()).expect("extracts");
    c.bench_function("tfidf_fit_small_corpus", |b| {
        b.iter(|| TfIdfModel::fit(&corpus.tokens))
    });
}

fn bench_ngg(c: &mut Criterion) {
    let web = SyntheticWeb::generate(&CorpusConfig::small(), 13);
    let corpus = extract_corpus(web.snapshot(), &CrawlConfig::default()).expect("extracts");
    let builder = NGramGraphBuilder::default();
    let text = &corpus.summaries[0];
    c.bench_function("ngg_build_doc_graph", |b| b.iter(|| builder.build(text)));

    let g1 = builder.build(&corpus.summaries[0]);
    let g2 = builder.build(&corpus.summaries[1]);
    c.bench_function("ngg_similarities", |b| {
        b.iter(|| GraphSimilarities::compute(&g1, &g2))
    });
}

fn bench_network(c: &mut Criterion) {
    let web = SyntheticWeb::generate(&CorpusConfig::medium(), 14);
    let corpus = extract_corpus(web.snapshot(), &CrawlConfig::default()).expect("extracts");
    let artifacts = build_web_graph(&corpus);
    let seeds: Vec<_> = (0..corpus.len())
        .filter(|&i| corpus.labels[i])
        .map(|i| artifacts.pharmacy_nodes[i])
        .collect();
    c.bench_function("trustrank_medium_graph", |b| {
        b.iter(|| {
            artifacts
                .graph
                .trust_rank(&seeds, &TrustRankConfig::default())
        })
    });
}

fn training_set() -> Dataset {
    let web = SyntheticWeb::generate(&CorpusConfig::small(), 15);
    let corpus = extract_corpus(web.snapshot(), &CrawlConfig::default()).expect("extracts");
    let tfidf = TfIdfModel::fit(&corpus.tokens);
    let mut data = Dataset::new(tfidf.vocabulary().len().max(1));
    for (i, tokens) in corpus.tokens.iter().enumerate() {
        data.push(tfidf.transform(tokens), corpus.labels[i]);
    }
    data
}

fn bench_learners(c: &mut Criterion) {
    let data = training_set();
    c.bench_function("nbm_fit", |b| {
        b.iter(|| MultinomialNaiveBayes::default().fit(&data))
    });
    c.bench_function("svm_fit", |b| b.iter(|| LinearSvm::default().fit(&data)));
    c.bench_function("j48_fit", |b| b.iter(|| DecisionTree::default().fit(&data)));
    c.bench_function("smote_resample", |b| {
        b.iter_batched(
            || data.clone(),
            |d| Sampling::Smote.apply(&d, 1),
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_html, bench_crawl, bench_text, bench_ngg, bench_network, bench_learners
);
criterion_main!(benches);
