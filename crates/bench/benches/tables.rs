//! `cargo bench --bench tables` — regenerates every table and figure of
//! the paper as part of the benchmark run, so the experiment record lands
//! in the benchmark log. Scale is controlled by `PHARMAVERIFY_SCALE`
//! (default `medium` here, to keep `cargo bench --workspace` in the
//! minutes range; run the `repro` binary for a paper-scale pass).

use pharmaverify_bench::{figures, tables, ReproContext, Scale};
use std::time::Instant;

fn main() {
    let scale = std::env::var("PHARMAVERIFY_SCALE")
        .ok()
        .and_then(|s| Scale::parse(&s))
        .unwrap_or(Scale::Medium);
    let started = Instant::now();
    eprintln!("[tables bench] generating corpus at {scale:?} scale…");
    let ctx = ReproContext::new(scale);
    eprintln!(
        "[tables bench] corpus ready in {:.1}s",
        started.elapsed().as_secs_f64()
    );

    println!("{}", tables::table1(&ctx));
    println!("{}", tables::table2());

    let t = Instant::now();
    let grid = tables::tfidf_grid(&ctx);
    eprintln!(
        "[tables bench] TF-IDF grid in {:.1}s",
        t.elapsed().as_secs_f64()
    );
    println!("{}", tables::table3(&grid));
    let (a, b) = tables::table4(&grid);
    println!("{a}\n{b}");
    let (a, b) = tables::table5(&grid);
    println!("{a}\n{b}");
    println!("{}", tables::table6(&grid));

    let t = Instant::now();
    let ngg = tables::ngg_grid(&ctx);
    eprintln!(
        "[tables bench] NGG grid in {:.1}s",
        t.elapsed().as_secs_f64()
    );
    println!("{}", tables::table7(&ngg));
    let (a, b) = tables::table8(&ngg);
    println!("{a}\n{b}");
    let (a, b) = tables::table9(&ngg);
    println!("{a}\n{b}");
    println!("{}", tables::table10(&ngg));

    println!("{}", tables::table11(&ctx));

    let t = Instant::now();
    let network = tables::network_outcome(&ctx);
    eprintln!(
        "[tables bench] network in {:.1}s",
        t.elapsed().as_secs_f64()
    );
    println!("{}", tables::table12(&network));
    println!("{}", tables::table13(&network));
    println!("{}", tables::ablation_pagerank(&ctx));

    let t = Instant::now();
    println!(
        "{}",
        tables::table14(&ctx, ngg.summaries[3][2], network.aggregate())
    );
    eprintln!(
        "[tables bench] ensemble in {:.1}s",
        t.elapsed().as_secs_f64()
    );

    let t = Instant::now();
    println!("{}", tables::table15(&ctx));
    println!("{}", tables::outlier_analysis(&ctx));
    eprintln!(
        "[tables bench] ranking in {:.1}s",
        t.elapsed().as_secs_f64()
    );

    let t = Instant::now();
    let (t16, t17) = tables::table16_17(&ctx);
    eprintln!("[tables bench] drift in {:.1}s", t.elapsed().as_secs_f64());
    println!("{t16}\n{t17}");

    println!("{}", figures::figure3());

    let t = Instant::now();
    println!("{}", tables::ablation_sampling(&ctx));
    println!("{}", tables::ablation_label_noise(&ctx));
    println!("{}", tables::ablation_representations(&ctx));
    println!("{}", tables::ablation_svm_ranking(&ctx));
    println!("{}", tables::ablation_feature_selection(&ctx));
    println!("{}", tables::future_work_network(&ctx));
    println!("{}", tables::future_work_combined(&ctx));
    eprintln!(
        "[tables bench] ablations + future work in {:.1}s",
        t.elapsed().as_secs_f64()
    );
    eprintln!(
        "[tables bench] total {:.1}s",
        started.elapsed().as_secs_f64()
    );
}
