//! `cargo bench --bench tables` — regenerates every table and figure of
//! the paper as part of the benchmark run, so the experiment record lands
//! in the benchmark log. Scale is controlled by `PHARMAVERIFY_SCALE`
//! (default `medium` here, to keep `cargo bench --workspace` in the
//! minutes range; run the `repro` binary for a paper-scale pass), worker
//! count by `PHARMAVERIFY_JOBS` (default: available cores).

use pharmaverify_bench::{render_report, ReproContext, Scale, Selection};
use pharmaverify_core::pipeline::Executor;
use std::time::Instant;

fn main() {
    let scale = Scale::from_env_default(Scale::Medium).unwrap_or_else(|e| {
        eprintln!("[tables bench] {e}");
        std::process::exit(2);
    });
    let exec = Executor::from_env().unwrap_or_else(|e| {
        eprintln!("[tables bench] {e}");
        std::process::exit(2);
    });
    let started = Instant::now();
    eprintln!("[tables bench] generating corpus at {scale:?} scale…");
    let ctx = match ReproContext::try_new(scale) {
        Ok(ctx) => ctx,
        Err(e) => {
            eprintln!("[tables bench] corpus extraction failed: {e}");
            std::process::exit(1);
        }
    };
    eprintln!(
        "[tables bench] corpus ready in {:.1}s ({} workers)",
        started.elapsed().as_secs_f64(),
        exec.jobs()
    );

    let report = render_report(&ctx, &Selection::everything(), exec);
    print!("{}", report.output);

    for (path, count, micros) in pharmaverify_obs::global().span_totals() {
        if let Some(name) = path.strip_prefix("report/section/") {
            if !name.contains('/') {
                eprintln!(
                    "[tables bench] {name} in {:.1}s (×{count})",
                    micros as f64 / 1_000_000.0
                );
            }
        }
    }
    let (hits, misses) = ctx.store.totals();
    eprintln!(
        "[tables bench] total {:.1}s ({hits} cache hits, {misses} misses)",
        started.elapsed().as_secs_f64()
    );
}
