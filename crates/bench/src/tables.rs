//! Table generators — one per table of the paper's evaluation section.

use crate::context::ReproContext;
use pharmaverify_core::classify::{
    build_web_graph, evaluate_ensemble, evaluate_network, ngg_document_texts, CvConfig,
    TextLearnerKind,
};
use pharmaverify_core::features::ExtractedCorpus;
use pharmaverify_core::rank::{evaluate_ranking, RankingMethod};
use pharmaverify_core::report::{abbreviations, Table};
use pharmaverify_core::{drift_study, evaluate_tfidf};
use pharmaverify_ml::{
    stratified_folds, CvOutcome, Dataset, EvalSummary, FoldOutcome, Learner, Sampling,
};
use pharmaverify_net::top_linked;
use pharmaverify_ngg::{NGramGraphBuilder, NggClassGraphs};
use pharmaverify_text::SparseVector;

/// The TF-IDF experiment rows of Tables 3–6.
pub const TFIDF_ROWS: &[(TextLearnerKind, Sampling)] = &[
    (TextLearnerKind::Nbm, Sampling::None),
    (TextLearnerKind::Svm, Sampling::None),
    (TextLearnerKind::J48, Sampling::Smote),
];

/// The N-Gram-Graph experiment rows of Tables 7–10.
pub const NGG_ROWS: &[TextLearnerKind] = &[
    TextLearnerKind::Nb,
    TextLearnerKind::Svm,
    TextLearnerKind::J48,
    TextLearnerKind::Mlp,
];

/// Aggregated results of a classifier × subsample-size grid.
pub struct GridResults {
    /// Row labels, e.g. `"NBM NO"`.
    pub rows: Vec<String>,
    /// `summaries[row][size]`, sizes in [`ReproContext::subsample_sizes`]
    /// order.
    pub summaries: Vec<Vec<EvalSummary>>,
}

impl GridResults {
    fn table(&self, title: &str, value: impl Fn(&EvalSummary) -> f64) -> Table {
        let mut headers = vec!["Classifier".to_string()];
        headers.extend(
            ReproContext::subsample_sizes()
                .iter()
                .map(|(_, name)| name.to_string()),
        );
        let mut t = Table {
            title: title.to_string(),
            headers,
            rows: Vec::new(),
        };
        for (label, row) in self.rows.iter().zip(&self.summaries) {
            let mut cells = vec![label.clone()];
            cells.extend(row.iter().map(|s| Table::fmt2(value(s))));
            t.push_row(cells);
        }
        t
    }
}

/// Table 1: dataset statistics.
pub fn table1(ctx: &ReproContext) -> Table {
    let mut t = Table::new(
        "Table 1: Datasets",
        &[
            "",
            "Dataset 1 (Date 1)",
            "Dataset 2 (Date 2, 6 months later)",
        ],
    );
    let s1 = ctx.snapshot1.stats();
    let s2 = ctx.snapshot2.stats();
    t.push_row(vec![
        "# Examples".into(),
        format!("{} (100%)", s1.total),
        format!("{} (100%)", s2.total),
    ]);
    t.push_row(vec![
        "# Legitimate Examples".into(),
        format!("{} ({:.0}%)", s1.legitimate, s1.legitimate_percent()),
        format!("{} ({:.0}%)", s2.legitimate, s2.legitimate_percent()),
    ]);
    t.push_row(vec![
        "# Illegitimate Examples".into(),
        format!(
            "{} ({:.0}%)",
            s1.illegitimate,
            100.0 - s1.legitimate_percent()
        ),
        format!(
            "{} ({:.0}%)",
            s2.illegitimate,
            100.0 - s2.legitimate_percent()
        ),
    ]);
    t
}

/// Table 2: abbreviation legend (static).
pub fn table2() -> Table {
    abbreviations()
}

/// Runs the full TF-IDF grid (Tables 3–6): three classifier/sampling
/// rows across the five subsample sizes.
pub fn tfidf_grid(ctx: &ReproContext) -> GridResults {
    let mut rows = Vec::new();
    let mut summaries = Vec::new();
    for &(kind, sampling) in TFIDF_ROWS {
        rows.push(format!("{} {}", kind.name(), sampling.abbreviation()));
        let learner = kind.learner();
        let row: Vec<EvalSummary> = ReproContext::subsample_sizes()
            .iter()
            .map(|&(size, _)| {
                evaluate_tfidf(
                    &ctx.corpus1,
                    learner.as_ref(),
                    sampling,
                    kind.weighting(),
                    size,
                    ctx.cv,
                )
                .aggregate()
            })
            .collect();
        summaries.push(row);
    }
    GridResults { rows, summaries }
}

/// Table 3: TF-IDF overall accuracy.
pub fn table3(grid: &GridResults) -> Table {
    grid.table("Table 3: TF-IDF - Overall Accuracy", |s| s.accuracy)
}

/// Table 4: TF-IDF legitimate recall and precision.
pub fn table4(grid: &GridResults) -> (Table, Table) {
    (
        grid.table("Table 4a: TF-IDF - legitimate recall", |s| {
            s.legitimate.recall
        }),
        grid.table("Table 4b: TF-IDF - legitimate precision", |s| {
            s.legitimate.precision
        }),
    )
}

/// Table 5: TF-IDF illegitimate recall and precision.
pub fn table5(grid: &GridResults) -> (Table, Table) {
    (
        grid.table("Table 5a: TF-IDF - illegitimate recall", |s| {
            s.illegitimate.recall
        }),
        grid.table("Table 5b: TF-IDF - illegitimate precision", |s| {
            s.illegitimate.precision
        }),
    )
}

/// Table 6: TF-IDF area under the ROC curve.
pub fn table6(grid: &GridResults) -> Table {
    grid.table("Table 6: TF-IDF - Area Under ROC Curve", |s| s.auc)
}

/// Runs the full N-Gram-Graph grid (Tables 7–10). The per-fold class
/// graphs and document features are computed once per subsample size and
/// shared by all four classifiers — the expensive part is the graph work,
/// not the learning.
pub fn ngg_grid(ctx: &ReproContext) -> GridResults {
    let corpus = &ctx.corpus1;
    let cv = ctx.cv;
    let folds = stratified_folds(&corpus.labels, cv.k, cv.seed);
    let mut summaries = vec![Vec::new(); NGG_ROWS.len()];

    for &(size, _) in ReproContext::subsample_sizes().iter() {
        let texts = ngg_document_texts(corpus, size, cv.seed);
        // Per fold: features for every document against this fold's class
        // graphs. Folds run in parallel.
        let texts_ref = &texts;
        let folds_ref = &folds;
        let fold_datasets: Vec<(Vec<usize>, Dataset)> = std::thread::scope(|scope| {
            let handles: Vec<_> = folds_ref
                .iter()
                .enumerate()
                .map(|(f, test_idx)| {
                    scope.spawn(move || {
                        let train_idx: Vec<usize> = (0..corpus.len())
                            .filter(|i| !test_idx.contains(i))
                            .collect();
                        let legit: Vec<&str> = train_idx
                            .iter()
                            .filter(|&&i| corpus.labels[i])
                            .map(|&i| texts_ref[i].as_str())
                            .collect();
                        let illegit: Vec<&str> = train_idx
                            .iter()
                            .filter(|&&i| !corpus.labels[i])
                            .map(|&i| texts_ref[i].as_str())
                            .collect();
                        let graphs = NggClassGraphs::build(
                            NGramGraphBuilder::default(),
                            &legit,
                            &illegit,
                            cv.seed ^ (f as u64),
                        );
                        let mut all = Dataset::new(8);
                        for (text, &label) in texts_ref.iter().zip(&corpus.labels) {
                            let v = SparseVector::from_dense(&graphs.features(text).to_vec());
                            all.push(v, label);
                        }
                        (test_idx.clone(), all)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)))
                .collect()
        });

        for (row, &kind) in NGG_ROWS.iter().enumerate() {
            let learner = kind.ngg_learner();
            let outcomes: Vec<FoldOutcome> = fold_datasets
                .iter()
                .map(|(test_idx, all)| {
                    let train_idx: Vec<usize> = (0..corpus.len())
                        .filter(|i| !test_idx.contains(i))
                        .collect();
                    let model = learner.fit(&all.subset(&train_idx));
                    let labels: Vec<bool> = test_idx.iter().map(|&i| all.y(i)).collect();
                    let scores: Vec<f64> =
                        test_idx.iter().map(|&i| model.score(all.x(i))).collect();
                    let predictions: Vec<bool> =
                        test_idx.iter().map(|&i| model.predict(all.x(i))).collect();
                    FoldOutcome {
                        summary: EvalSummary::compute(&labels, &predictions, &scores),
                        scores,
                        labels,
                    }
                })
                .collect();
            summaries[row].push(CvOutcome { folds: outcomes }.aggregate());
        }
    }
    GridResults {
        rows: NGG_ROWS
            .iter()
            .map(|k| format!("{} NO", k.name()))
            .collect(),
        summaries,
    }
}

/// Table 7: N-Gram Graphs classifier accuracy.
pub fn table7(grid: &GridResults) -> Table {
    grid.table("Table 7: N-Gram Graphs - Classifiers Accuracy", |s| {
        s.accuracy
    })
}

/// Table 8: N-Gram Graphs legitimate recall and precision.
pub fn table8(grid: &GridResults) -> (Table, Table) {
    (
        grid.table("Table 8a: N-Gram Graphs - legitimate recall", |s| {
            s.legitimate.recall
        }),
        grid.table("Table 8b: N-Gram Graphs - legitimate precision", |s| {
            s.legitimate.precision
        }),
    )
}

/// Table 9: N-Gram Graphs illegitimate recall and precision.
pub fn table9(grid: &GridResults) -> (Table, Table) {
    (
        grid.table("Table 9a: N-Gram Graphs - illegitimate recall", |s| {
            s.illegitimate.recall
        }),
        grid.table("Table 9b: N-Gram Graphs - illegitimate precision", |s| {
            s.illegitimate.precision
        }),
    )
}

/// Table 10: N-Gram Graphs area under the ROC curve.
pub fn table10(grid: &GridResults) -> Table {
    grid.table("Table 10: N-Gram Graphs - Area Under ROC Curve", |s| s.auc)
}

/// Table 11: the ten most linked-to external domains per class.
pub fn table11(ctx: &ReproContext) -> Table {
    let corpus = &ctx.corpus1;
    let per_class = |want_legit: bool| {
        let outbound: Vec<Vec<&str>> = (0..corpus.len())
            .filter(|&i| corpus.labels[i] == want_legit)
            .map(|i| {
                corpus.outbound[i]
                    .keys()
                    .map(String::as_str)
                    // Links to other pharmacies in P count too (that is the
                    // affiliate signal), but self-links never occur.
                    .collect()
            })
            .collect();
        top_linked(outbound, 10)
    };
    let legit = per_class(true);
    let illegit = per_class(false);
    let mut t = Table::new(
        "Table 11: Websites pointed to by legitimate and illegitimate pharmacies (top 10)",
        &["pointed by legitimate", "pointed by illegitimate"],
    );
    for i in 0..legit.len().max(illegit.len()) {
        t.push_row(vec![
            legit.get(i).map(|r| r.domain.clone()).unwrap_or_default(),
            illegit.get(i).map(|r| r.domain.clone()).unwrap_or_default(),
        ]);
    }
    t
}

/// Runs the network experiment once (shared by Tables 12–13).
pub fn network_outcome(ctx: &ReproContext) -> CvOutcome {
    evaluate_network(&ctx.corpus1, ctx.cv)
}

/// Table 12: network classification accuracy and AUC.
pub fn table12(network: &CvOutcome) -> Table {
    let s = network.aggregate();
    let mut t = Table::new(
        "Table 12: Network - Overall Accuracy and AUC ROC",
        &["Classifier", "Overall Accuracy", "AUC ROC"],
    );
    t.push_row(vec![
        "NB".into(),
        Table::fmt2(s.accuracy),
        Table::fmt2(s.auc),
    ]);
    t
}

/// Table 13: network per-class precision and recall.
pub fn table13(network: &CvOutcome) -> Table {
    let s = network.aggregate();
    let mut t = Table::new(
        "Table 13: Network - precision and recall",
        &[
            "Classifier",
            "legitimate precision",
            "legitimate recall",
            "illegitimate precision",
            "illegitimate recall",
        ],
    );
    t.push_row(vec![
        "NB".into(),
        Table::fmt3(s.legitimate.precision),
        Table::fmt3(s.legitimate.recall),
        Table::fmt3(s.illegitimate.precision),
        Table::fmt3(s.illegitimate.recall),
    ]);
    t
}

/// Table 14: ensemble selection vs the best text model (MLP on NGG) and
/// the network model, at the 1000-term subsample.
pub fn table14(ctx: &ReproContext, mlp_text: EvalSummary, network: EvalSummary) -> Table {
    let ensemble = evaluate_ensemble(&ctx.corpus1, Some(1000), ctx.cv);
    let s = ensemble.outcome.aggregate();
    let mut t = Table::new(
        "Table 14: Ensemble Classification Results (1000-term subsamples)",
        &[
            "Model",
            "Acc.",
            "legit Rec.",
            "legit Prec.",
            "illegit Rec.",
            "illegit Prec.",
            "AUC ROC",
        ],
    );
    let row = |name: &str, s: &EvalSummary| {
        vec![
            name.to_string(),
            Table::fmt2(s.accuracy),
            Table::fmt2(s.legitimate.recall),
            Table::fmt2(s.legitimate.precision),
            Table::fmt2(s.illegitimate.recall),
            Table::fmt2(s.illegitimate.precision),
            Table::fmt2(s.auc),
        ]
    };
    t.push_row(row("Ensem. Sel.", &s));
    t.push_row(row("Neural (Text)", &mlp_text));
    t.push_row(row("NB (Network)", &network));
    t
}

/// Table 15: pairwise orderedness of the four ranking variants.
pub fn table15(ctx: &ReproContext) -> Table {
    let mut t = Table::new(
        "Table 15: Ranking using TF-IDF and N-Gram Graphs (1000-term subsamples)",
        &["Method", "pairord"],
    );
    let methods = [
        RankingMethod::TfIdf {
            kind: TextLearnerKind::Nbm,
            sampling: Sampling::None,
        },
        RankingMethod::TfIdf {
            kind: TextLearnerKind::Svm,
            sampling: Sampling::None,
        },
        RankingMethod::TfIdf {
            kind: TextLearnerKind::J48,
            sampling: Sampling::Smote,
        },
        RankingMethod::NggEquation3,
    ];
    for method in methods {
        let outcome = evaluate_ranking(&ctx.corpus1, method, Some(1000), ctx.cv);
        t.push_row(vec![method.name(), Table::fmt3(outcome.pairord)]);
    }
    t
}

/// Tables 16 and 17: model evolution over time — AUC (16) and legitimate
/// precision (17) for Old-Old / New-New / Old-New at 250 and 1000 terms.
pub fn table16_17(ctx: &ReproContext) -> (Table, Table) {
    let headers = &[
        "Classifier",
        "Old-Old 250",
        "Old-Old 1000",
        "New-New 250",
        "New-New 1000",
        "Old-New 250",
        "Old-New 1000",
    ];
    let mut t16 = Table::new(
        "Table 16: TF-IDF - Model over Time - Area Under ROC Curve",
        headers,
    );
    let mut t17 = Table::new(
        "Table 17: TF-IDF - Model over Time - legitimate Precision",
        headers,
    );
    for &(kind, sampling) in TFIDF_ROWS {
        let label = format!("{} {}", kind.name(), sampling.abbreviation());
        let rows: Vec<drift_study::DriftRow> = [Some(250), Some(1000)]
            .into_iter()
            .map(|size| {
                drift_study::drift_row(&ctx.corpus1, &ctx.corpus2, kind, sampling, size, ctx.cv)
            })
            .collect();
        let cells = |pick: &dyn Fn(&drift_study::DriftCell) -> f64| -> Vec<String> {
            let mut c = vec![label.clone()];
            for scenario in 0..3 {
                for row in &rows {
                    let cell = match scenario {
                        0 => row.old_old,
                        1 => row.new_new,
                        _ => row.old_new,
                    };
                    c.push(Table::fmt2(pick(&cell)));
                }
            }
            c
        };
        t16.push_row(cells(&|c| c.auc));
        t17.push_row(cells(&|c| c.legitimate_precision));
    }
    (t16, t17)
}

/// The §6.4 outlier analysis, printed alongside Table 15.
pub fn outlier_analysis(ctx: &ReproContext) -> Table {
    let ranking = evaluate_ranking(
        &ctx.corpus1,
        RankingMethod::TfIdf {
            kind: TextLearnerKind::Nbm,
            sampling: Sampling::None,
        },
        Some(1000),
        ctx.cv,
    );
    let k = (ctx.corpus1.len() / 30).clamp(3, 20);
    let report = pharmaverify_core::ranking_outliers(&ranking, k);
    let mut t = Table::new(
        "Outlier analysis (Section 6.4)",
        &[
            "Outlier group",
            "Expert-finding profile",
            "Fraction matching",
        ],
    );
    t.push_row(vec![
        format!("top-{k} illegitimate"),
        "off-network mimics".into(),
        Table::fmt2(report.illegitimate_off_network_fraction()),
    ]);
    t.push_row(vec![
        format!("bottom-{k} legitimate"),
        "refill-only storefronts".into(),
        Table::fmt2(report.legitimate_refill_only_fraction()),
    ]);
    t
}

/// Ablation: TrustRank-seeded network features vs unbiased PageRank —
/// quantifies how much of the network signal comes from the trusted seed
/// (the design choice §4.2 motivates).
pub fn ablation_pagerank(ctx: &ReproContext) -> Table {
    use pharmaverify_ml::{GaussianNaiveBayes, Model};
    use pharmaverify_net::{pagerank, TrustRankConfig};
    let corpus = &ctx.corpus1;
    let artifacts = build_web_graph(corpus);
    let pr = pagerank(&artifacts.graph, &TrustRankConfig::default());
    let scale = artifacts.graph.node_count() as f64;
    let folds = stratified_folds(&corpus.labels, ctx.cv.k, ctx.cv.seed);
    let mut outcomes = Vec::new();
    for test_idx in &folds {
        let train_idx: Vec<usize> = (0..corpus.len())
            .filter(|i| !test_idx.contains(i))
            .collect();
        let mut train = Dataset::new(1);
        for &i in &train_idx {
            let score = pr[artifacts.pharmacy_nodes[i] as usize] * scale;
            train.push(SparseVector::from_pairs(vec![(0, score)]), corpus.labels[i]);
        }
        let model = GaussianNaiveBayes::default().fit(&train);
        let labels: Vec<bool> = test_idx.iter().map(|&i| corpus.labels[i]).collect();
        let scores: Vec<f64> = test_idx
            .iter()
            .map(|&i| {
                model.score(&SparseVector::from_pairs(vec![(
                    0,
                    pr[artifacts.pharmacy_nodes[i] as usize] * scale,
                )]))
            })
            .collect();
        let predictions: Vec<bool> = scores.iter().map(|&s| s >= 0.5).collect();
        outcomes.push(FoldOutcome {
            summary: EvalSummary::compute(&labels, &predictions, &scores),
            scores,
            labels,
        });
    }
    let pr_summary = CvOutcome { folds: outcomes }.aggregate();
    let tr_summary = network_outcome(ctx).aggregate();
    let mut t = Table::new(
        "Ablation: TrustRank seed vs unbiased PageRank (network feature)",
        &["Feature", "Accuracy", "AUC ROC", "legit recall"],
    );
    t.push_row(vec![
        "TrustRank (seeded)".into(),
        Table::fmt2(tr_summary.accuracy),
        Table::fmt2(tr_summary.auc),
        Table::fmt2(tr_summary.legitimate.recall),
    ]);
    t.push_row(vec![
        "PageRank (unseeded)".into(),
        Table::fmt2(pr_summary.accuracy),
        Table::fmt2(pr_summary.auc),
        Table::fmt2(pr_summary.legitimate.recall),
    ]);
    t
}

/// Ablation: the full sampling grid the paper ran but reported only the
/// best of ("we performed various tests with all combinations among
/// classifiers and sampling techniques", §6.3.1). One row per classifier
/// × sampling treatment, at the 1000-term subsample.
pub fn ablation_sampling(ctx: &ReproContext) -> Table {
    let mut t = Table::new(
        "Ablation: sampling treatments (1000-term subsamples)",
        &[
            "Classifier",
            "Sampling",
            "Acc.",
            "legit Rec.",
            "legit Prec.",
            "AUC ROC",
        ],
    );
    for kind in [
        TextLearnerKind::Nbm,
        TextLearnerKind::Svm,
        TextLearnerKind::J48,
    ] {
        for sampling in [Sampling::None, Sampling::Undersample, Sampling::Smote] {
            let s = tfidf_single(&ctx.corpus1, kind, sampling, Some(1000), ctx.cv);
            t.push_row(vec![
                kind.name().to_string(),
                sampling.abbreviation().to_string(),
                Table::fmt2(s.accuracy),
                Table::fmt2(s.legitimate.recall),
                Table::fmt2(s.legitimate.precision),
                Table::fmt2(s.auc),
            ]);
        }
    }
    t
}

/// Ablation: sensitivity to training-label noise, following the
/// classifier-behaviour-under-mislabeling study the paper cites (\[24\],
/// Mirylenka et al., DAMI 2017). A seeded fraction of *training* labels
/// is flipped per fold; test labels stay clean.
pub fn ablation_label_noise(ctx: &ReproContext) -> Table {
    use pharmaverify_core::classify::subsampled_documents;
    use pharmaverify_text::TfIdfModel;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    let corpus = &ctx.corpus1;
    let cv = ctx.cv;
    let docs = subsampled_documents(corpus, Some(1000), cv.seed);
    let folds = stratified_folds(&corpus.labels, cv.k, cv.seed);
    let mut t = Table::new(
        "Ablation: training-label noise (1000-term subsamples)",
        &["Classifier", "0%", "5%", "10%", "20%"],
    );
    for kind in [TextLearnerKind::Nbm, TextLearnerKind::Svm] {
        let mut cells = vec![kind.name().to_string()];
        for noise in [0.0, 0.05, 0.10, 0.20] {
            let mut outcomes = Vec::new();
            for (f, test_idx) in folds.iter().enumerate() {
                let train_idx: Vec<usize> = (0..corpus.len())
                    .filter(|i| !test_idx.contains(i))
                    .collect();
                let mut rng = SmallRng::seed_from_u64(cv.seed ^ 0x4015e ^ (f as u64));
                let train_docs: Vec<&Vec<String>> = train_idx.iter().map(|&i| &docs[i]).collect();
                let tfidf = TfIdfModel::fit(&train_docs[..]);
                let weighting = kind.weighting();
                let mut train = Dataset::new(tfidf.vocabulary().len().max(1));
                for &i in &train_idx {
                    let label = if noise > 0.0 && rng.gen_bool(noise) {
                        !corpus.labels[i]
                    } else {
                        corpus.labels[i]
                    };
                    train.push(weighting.vectorize(&tfidf, &docs[i]), label);
                }
                let model = kind.learner().fit(&train);
                let labels: Vec<bool> = test_idx.iter().map(|&i| corpus.labels[i]).collect();
                let scores: Vec<f64> = test_idx
                    .iter()
                    .map(|&i| model.score(&weighting.vectorize(&tfidf, &docs[i])))
                    .collect();
                let predictions: Vec<bool> = test_idx
                    .iter()
                    .map(|&i| model.predict(&weighting.vectorize(&tfidf, &docs[i])))
                    .collect();
                outcomes.push(FoldOutcome {
                    summary: EvalSummary::compute(&labels, &predictions, &scores),
                    scores,
                    labels,
                });
            }
            let agg = CvOutcome { folds: outcomes }.aggregate();
            cells.push(Table::fmt2(agg.auc));
        }
        t.push_row(cells);
    }
    t
}

/// Future work §7(a): network-analysis variants — the paper's baseline,
/// the Anti-TrustRank distrust feature, and the extended graph with
/// non-pharmacy referrer portals (two-hop trust paths).
pub fn future_work_network(ctx: &ReproContext) -> Table {
    use pharmaverify_core::extensions::{
        build_extended_web_graph, evaluate_network_variant, portal_links,
    };
    let corpus = &ctx.corpus1;
    let base = build_web_graph(corpus);
    let portals = portal_links(&ctx.snapshot1, &pharmaverify_crawl::CrawlConfig::default());
    let extended = build_extended_web_graph(corpus, &portals);
    let mut t = Table::new(
        "Future work (Section 7a): network-analysis variants",
        &["Variant", "Acc.", "AUC ROC", "legit Rec.", "legit Prec."],
    );
    let rows = [
        ("TrustRank (paper baseline)", &base, false),
        ("+ Anti-TrustRank distrust", &base, true),
        ("Extended graph (referrer portals)", &extended, false),
        ("Extended + distrust", &extended, true),
    ];
    for (name, artifacts, use_distrust) in rows {
        let s = evaluate_network_variant(corpus, artifacts, use_distrust, ctx.cv).aggregate();
        t.push_row(vec![
            name.to_string(),
            Table::fmt2(s.accuracy),
            Table::fmt2(s.auc),
            Table::fmt2(s.legitimate.recall),
            Table::fmt2(s.legitimate.precision),
        ]);
    }
    t
}

/// Future work §7(b): one classifier over combined text + network
/// features, compared with the best single-view models.
pub fn future_work_combined(ctx: &ReproContext) -> Table {
    use pharmaverify_core::extensions::evaluate_combined;
    let combined = evaluate_combined(&ctx.corpus1, Some(1000), ctx.cv).aggregate();
    let text_svm = tfidf_single(
        &ctx.corpus1,
        TextLearnerKind::Svm,
        Sampling::None,
        Some(1000),
        ctx.cv,
    );
    let network = network_outcome(ctx).aggregate();
    let mut t = Table::new(
        "Future work (Section 7b): combined text + network features (SVM, 1000 terms)",
        &["Model", "Acc.", "AUC ROC", "legit Rec.", "legit Prec."],
    );
    for (name, s) in [
        ("Combined (tfidf + NGG + trust)", combined),
        ("Text only (tfidf SVM)", text_svm),
        ("Network only (NB)", network),
    ] {
        t.push_row(vec![
            name.to_string(),
            Table::fmt2(s.accuracy),
            Table::fmt2(s.auc),
            Table::fmt2(s.legitimate.recall),
            Table::fmt2(s.legitimate.precision),
        ]);
    }
    t
}

/// Ablation: the three text representations of the comparison study the
/// paper builds on (\[13\], Giannakopoulos et al.): Term Vector (TF-IDF),
/// Character N-Grams (bag of char 4-grams), and N-Gram Graphs — all under
/// the same SVM, at the 1000-term subsample.
pub fn ablation_representations(ctx: &ReproContext) -> Table {
    use pharmaverify_core::classify::{ngg_document_texts, subsampled_documents};
    use pharmaverify_text::CharNgramModel;

    let corpus = &ctx.corpus1;
    let cv = ctx.cv;
    let folds = stratified_folds(&corpus.labels, cv.k, cv.seed);
    let docs = subsampled_documents(corpus, Some(1000), cv.seed);
    let texts = ngg_document_texts(corpus, Some(1000), cv.seed);

    let mut t = Table::new(
        "Ablation: text representations under SVM (1000-term subsamples, cf. [13])",
        &[
            "Representation",
            "Acc.",
            "legit Rec.",
            "legit Prec.",
            "AUC ROC",
        ],
    );

    // Term Vector and N-Gram Graphs reuse the standard pipelines.
    let term_vector = tfidf_single(corpus, TextLearnerKind::Svm, Sampling::None, Some(1000), cv);
    let ngg = {
        let learner = TextLearnerKind::Svm.ngg_learner();
        pharmaverify_core::classify::evaluate_ngg(corpus, learner.as_ref(), Some(1000), cv)
            .aggregate()
    };

    // Character N-Grams: char-4-gram tf·idf vectors under the same SVM.
    let char_ngrams = {
        let mut outcomes = Vec::new();
        for test_idx in &folds {
            let train_idx: Vec<usize> = (0..corpus.len())
                .filter(|i| !test_idx.contains(i))
                .collect();
            let train_texts: Vec<&str> = train_idx.iter().map(|&i| texts[i].as_str()).collect();
            let model = CharNgramModel::fit(&train_texts, 4);
            let dim = model.vocabulary_size().max(1);
            let mut train = Dataset::new(dim);
            for &i in &train_idx {
                train.push(model.transform(&texts[i]), corpus.labels[i]);
            }
            let svm = TextLearnerKind::Svm.learner().fit(&train);
            let labels: Vec<bool> = test_idx.iter().map(|&i| corpus.labels[i]).collect();
            let scores: Vec<f64> = test_idx
                .iter()
                .map(|&i| svm.score(&model.transform(&texts[i])))
                .collect();
            let predictions: Vec<bool> = test_idx
                .iter()
                .map(|&i| svm.predict(&model.transform(&texts[i])))
                .collect();
            outcomes.push(FoldOutcome {
                summary: EvalSummary::compute(&labels, &predictions, &scores),
                scores,
                labels,
            });
        }
        CvOutcome { folds: outcomes }.aggregate()
    };
    drop(docs);

    for (name, s) in [
        ("Term Vector (TF-IDF)", term_vector),
        ("Character N-Grams", char_ngrams),
        ("N-Gram Graphs (8 sims)", ngg),
    ] {
        t.push_row(vec![
            name.to_string(),
            Table::fmt2(s.accuracy),
            Table::fmt2(s.legitimate.recall),
            Table::fmt2(s.legitimate.precision),
            Table::fmt2(s.auc),
        ]);
    }
    t
}

/// Ablation: what the SVM should contribute to the ranking score — the
/// paper's hard {0, 1} decision (§5), the raw margin, or a
/// Platt-calibrated probability — measured by pairwise orderedness.
pub fn ablation_svm_ranking(ctx: &ReproContext) -> Table {
    use pharmaverify_core::classify::subsampled_documents;
    use pharmaverify_ml::metrics::pairwise_orderedness;
    use pharmaverify_ml::svm::LinearSvm;
    use pharmaverify_ml::PlattScaler;
    use pharmaverify_text::TfIdfModel;

    let corpus = &ctx.corpus1;
    let cv = ctx.cv;
    let docs = subsampled_documents(corpus, Some(1000), cv.seed);
    let folds = stratified_folds(&corpus.labels, cv.k, cv.seed);
    let mut hard = vec![0.0; corpus.len()];
    let mut margin = vec![0.0; corpus.len()];
    let mut platt = vec![0.0; corpus.len()];

    for test_idx in &folds {
        let train_idx: Vec<usize> = (0..corpus.len())
            .filter(|i| !test_idx.contains(i))
            .collect();
        let train_docs: Vec<&Vec<String>> = train_idx.iter().map(|&i| &docs[i]).collect();
        let tfidf = TfIdfModel::fit(&train_docs[..]);
        let mut train = Dataset::new(tfidf.vocabulary().len().max(1));
        for &i in &train_idx {
            train.push(tfidf.transform(&docs[i]), corpus.labels[i]);
        }
        let model = LinearSvm::default().fit_svm(&train);
        // Platt scaling fitted on the training decisions.
        let train_decisions: Vec<f64> = train_idx
            .iter()
            .map(|&i| model.decision(&tfidf.transform(&docs[i])))
            .collect();
        let train_labels: Vec<bool> = train_idx.iter().map(|&i| corpus.labels[i]).collect();
        let scaler = PlattScaler::fit(&train_decisions, &train_labels);
        for &i in test_idx {
            let d = model.decision(&tfidf.transform(&docs[i]));
            hard[i] = if d >= 0.0 { 1.0 } else { 0.0 };
            margin[i] = d;
            platt[i] = scaler.map(|s| s.calibrate(d)).unwrap_or(0.5);
        }
    }
    let mut t = Table::new(
        "Ablation: SVM contribution to textRank (pairwise orderedness)",
        &["SVM score used", "pairord"],
    );
    for (name, scores) in [
        ("hard {0,1} decision (paper, Section 5)", &hard),
        ("raw margin", &margin),
        ("Platt-calibrated probability", &platt),
    ] {
        let p = pairwise_orderedness(scores, &corpus.labels).unwrap_or(1.0);
        t.push_row(vec![name.to_string(), Table::fmt3(p)]);
    }
    t
}

/// Ablation: information-gain feature selection — how small the TF-IDF
/// vocabulary can get before accuracy suffers (cf. the scalable feature
/// selection line of work the paper cites, \[7\]).
pub fn ablation_feature_selection(ctx: &ReproContext) -> Table {
    use pharmaverify_core::classify::subsampled_documents;
    use pharmaverify_ml::{project, top_k_features};
    use pharmaverify_text::TfIdfModel;

    let corpus = &ctx.corpus1;
    let cv = ctx.cv;
    let docs = subsampled_documents(corpus, Some(1000), cv.seed);
    let folds = stratified_folds(&corpus.labels, cv.k, cv.seed);
    let mut t = Table::new(
        "Ablation: information-gain feature selection (NBM, 1000-term subsamples)",
        &[
            "Kept features",
            "Acc.",
            "legit Rec.",
            "legit Prec.",
            "AUC ROC",
        ],
    );
    for keep in [50usize, 200, 1000, usize::MAX] {
        let mut outcomes = Vec::new();
        for test_idx in &folds {
            let train_idx: Vec<usize> = (0..corpus.len())
                .filter(|i| !test_idx.contains(i))
                .collect();
            let train_docs: Vec<&Vec<String>> = train_idx.iter().map(|&i| &docs[i]).collect();
            let tfidf = TfIdfModel::fit(&train_docs[..]);
            let dim = tfidf.vocabulary().len().max(1);
            let mut train = Dataset::new(dim);
            for &i in &train_idx {
                train.push(tfidf.term_counts(&docs[i]), corpus.labels[i]);
            }
            let kept = top_k_features(&train, keep.min(dim));
            let train = project(&train, &kept);
            let vectorize = |i: usize| {
                let mut full = Dataset::new(dim);
                full.push(tfidf.term_counts(&docs[i]), corpus.labels[i]);
                let p = project(&full, &kept);
                p.x(0).clone()
            };
            let model = TextLearnerKind::Nbm.learner().fit(&train);
            let labels: Vec<bool> = test_idx.iter().map(|&i| corpus.labels[i]).collect();
            let scores: Vec<f64> = test_idx
                .iter()
                .map(|&i| model.score(&vectorize(i)))
                .collect();
            let predictions: Vec<bool> = test_idx
                .iter()
                .map(|&i| model.predict(&vectorize(i)))
                .collect();
            outcomes.push(FoldOutcome {
                summary: EvalSummary::compute(&labels, &predictions, &scores),
                scores,
                labels,
            });
        }
        let s = CvOutcome { folds: outcomes }.aggregate();
        t.push_row(vec![
            if keep == usize::MAX {
                "all".to_string()
            } else {
                keep.to_string()
            },
            Table::fmt2(s.accuracy),
            Table::fmt2(s.legitimate.recall),
            Table::fmt2(s.legitimate.precision),
            Table::fmt2(s.auc),
        ]);
    }
    t
}

/// Convenience: run the TF-IDF grid restricted to one subsample size
/// (used by the smoke tests).
pub fn tfidf_single(
    corpus: &ExtractedCorpus,
    kind: TextLearnerKind,
    sampling: Sampling,
    size: Option<usize>,
    cv: CvConfig,
) -> EvalSummary {
    let learner: Box<dyn Learner> = kind.learner();
    evaluate_tfidf(
        corpus,
        learner.as_ref(),
        sampling,
        kind.weighting(),
        size,
        cv,
    )
    .aggregate()
}
