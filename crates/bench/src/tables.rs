//! Table generators — one per table of the paper's evaluation section.
//!
//! Every generator draws its intermediate products (subsample draws, fold
//! splits, fitted TF-IDF models, class graphs, link graphs, TrustRank
//! vectors) from the context's shared [`ArtifactStore`], so tables that
//! revisit the same configuration — and there are many: the ranking
//! table, the outlier analysis, and four ablations all sit at the
//! 1000-term subsample — reuse one computation. The grid generators
//! additionally take an [`Executor`] and dispatch their independent cells
//! across it; results are assembled in a fixed order, so the rendered
//! tables are byte-identical at any thread count.

use crate::context::{ReproContext, REPRO_SEED};
use pharmaverify_core::classify::{
    evaluate_ensemble_in, evaluate_network_in, evaluate_ngg_in, evaluate_tfidf_in, CvConfig,
    TextLearnerKind,
};
use pharmaverify_core::drift_study;
use pharmaverify_core::features::extract_corpus_from;
use pharmaverify_core::pipeline::{Executor, Pipeline};
use pharmaverify_core::rank::{evaluate_ranking_in, RankingMethod};
use pharmaverify_core::report::{abbreviations, Table};
use pharmaverify_crawl::{CrawlConfig, FaultConfig, FaultyWeb};
use pharmaverify_ml::{CvOutcome, Dataset, EvalSummary, FoldOutcome, Learner, Sampling};
use pharmaverify_net::top_linked;
use pharmaverify_text::SparseVector;

/// The TF-IDF experiment rows of Tables 3–6.
pub const TFIDF_ROWS: &[(TextLearnerKind, Sampling)] = &[
    (TextLearnerKind::Nbm, Sampling::None),
    (TextLearnerKind::Svm, Sampling::None),
    (TextLearnerKind::J48, Sampling::Smote),
];

/// The N-Gram-Graph experiment rows of Tables 7–10.
pub const NGG_ROWS: &[TextLearnerKind] = &[
    TextLearnerKind::Nb,
    TextLearnerKind::Svm,
    TextLearnerKind::J48,
    TextLearnerKind::Mlp,
];

/// Aggregated results of a classifier × subsample-size grid.
pub struct GridResults {
    /// Row labels, e.g. `"NBM NO"`.
    pub rows: Vec<String>,
    /// `summaries[row][size]`, sizes in [`ReproContext::subsample_sizes`]
    /// order.
    pub summaries: Vec<Vec<EvalSummary>>,
}

impl GridResults {
    fn table(&self, title: &str, value: impl Fn(&EvalSummary) -> f64) -> Table {
        let mut headers = vec!["Classifier".to_string()];
        headers.extend(
            ReproContext::subsample_sizes()
                .iter()
                .map(|(_, name)| name.to_string()),
        );
        let mut t = Table {
            title: title.to_string(),
            headers,
            rows: Vec::new(),
        };
        for (label, row) in self.rows.iter().zip(&self.summaries) {
            let mut cells = vec![label.clone()];
            cells.extend(row.iter().map(|s| Table::fmt2(value(s))));
            t.push_row(cells);
        }
        t
    }
}

/// Table 1: dataset statistics.
pub fn table1(ctx: &ReproContext) -> Table {
    let mut t = Table::new(
        "Table 1: Datasets",
        &[
            "",
            "Dataset 1 (Date 1)",
            "Dataset 2 (Date 2, 6 months later)",
        ],
    );
    let s1 = ctx.snapshot1.stats();
    let s2 = ctx.snapshot2.stats();
    t.push_row(vec![
        "# Examples".into(),
        format!("{} (100%)", s1.total),
        format!("{} (100%)", s2.total),
    ]);
    t.push_row(vec![
        "# Legitimate Examples".into(),
        format!("{} ({:.0}%)", s1.legitimate, s1.legitimate_percent()),
        format!("{} ({:.0}%)", s2.legitimate, s2.legitimate_percent()),
    ]);
    t.push_row(vec![
        "# Illegitimate Examples".into(),
        format!(
            "{} ({:.0}%)",
            s1.illegitimate,
            100.0 - s1.legitimate_percent()
        ),
        format!(
            "{} ({:.0}%)",
            s2.illegitimate,
            100.0 - s2.legitimate_percent()
        ),
    ]);
    t
}

/// Table 2: abbreviation legend (static).
pub fn table2() -> Table {
    abbreviations()
}

/// Runs the full TF-IDF grid (Tables 3–6): three classifier/sampling
/// rows across the five subsample sizes. The fifteen cells are
/// independent and dispatch across the executor; the row-major assembly
/// order keeps the output identical at any thread count.
pub fn tfidf_grid(ctx: &ReproContext, exec: Executor) -> GridResults {
    let sizes = ReproContext::subsample_sizes();
    let cells: Vec<EvalSummary> = exec.run(TFIDF_ROWS.len() * sizes.len(), |idx| {
        let (kind, sampling) = TFIDF_ROWS[idx / sizes.len()];
        let (size, _) = sizes[idx % sizes.len()];
        let learner = kind.learner();
        evaluate_tfidf_in(
            ctx.pipe1(),
            learner.as_ref(),
            sampling,
            kind.weighting(),
            size,
            ctx.cv,
        )
        .aggregate()
    });
    GridResults {
        rows: TFIDF_ROWS
            .iter()
            .map(|(kind, sampling)| format!("{} {}", kind.name(), sampling.abbreviation()))
            .collect(),
        summaries: cells.chunks(sizes.len()).map(<[_]>::to_vec).collect(),
    }
}

/// Table 3: TF-IDF overall accuracy.
pub fn table3(grid: &GridResults) -> Table {
    grid.table("Table 3: TF-IDF - Overall Accuracy", |s| s.accuracy)
}

/// Table 4: TF-IDF legitimate recall and precision.
pub fn table4(grid: &GridResults) -> (Table, Table) {
    (
        grid.table("Table 4a: TF-IDF - legitimate recall", |s| {
            s.legitimate.recall
        }),
        grid.table("Table 4b: TF-IDF - legitimate precision", |s| {
            s.legitimate.precision
        }),
    )
}

/// Table 5: TF-IDF illegitimate recall and precision.
pub fn table5(grid: &GridResults) -> (Table, Table) {
    (
        grid.table("Table 5a: TF-IDF - illegitimate recall", |s| {
            s.illegitimate.recall
        }),
        grid.table("Table 5b: TF-IDF - illegitimate precision", |s| {
            s.illegitimate.precision
        }),
    )
}

/// Table 6: TF-IDF area under the ROC curve.
pub fn table6(grid: &GridResults) -> Table {
    grid.table("Table 6: TF-IDF - Area Under ROC Curve", |s| s.auc)
}

/// Runs the full N-Gram-Graph grid (Tables 7–10). The per-fold class
/// graphs and document features are computed once per subsample size and
/// shared by all four classifiers — the expensive part is the graph work,
/// not the learning. Subsample sizes dispatch across the executor.
pub fn ngg_grid(ctx: &ReproContext, exec: Executor) -> GridResults {
    let corpus = &ctx.corpus1;
    let cv = ctx.cv;
    let pipe = ctx.pipe1();
    let split = pipe.fold_split(cv.k, cv.seed);
    let sizes = ReproContext::subsample_sizes();

    // columns[size][row] — each size is one executor job.
    let columns: Vec<Vec<EvalSummary>> = exec.run(sizes.len(), |s| {
        let (size, _) = sizes[s];
        let texts = pipe.ngg_texts(size, cv.seed);
        // Per fold: features for every document against this fold's class
        // graphs. Folds run in parallel.
        let texts_ref = &texts;
        let split_ref = &split;
        let fold_datasets: Vec<(&[usize], Dataset)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..split_ref.k())
                .map(|f| {
                    scope.spawn(move || {
                        let test_idx = split_ref.test(f);
                        let train_idx = split_ref.train(f);
                        let graphs = pipe.ngg_class_graphs(size, cv.seed, f, train_idx);
                        let mut all = Dataset::new(8);
                        for (text, &label) in texts_ref.iter().zip(&corpus.labels) {
                            let v = SparseVector::from_dense(&graphs.features(text).to_vec());
                            all.push(v, label);
                        }
                        (test_idx, all)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)))
                .collect()
        });

        NGG_ROWS
            .iter()
            .map(|&kind| {
                let learner = kind.ngg_learner();
                let outcomes: Vec<FoldOutcome> = fold_datasets
                    .iter()
                    .enumerate()
                    .map(|(f, (test_idx, all))| {
                        let model = learner.fit(&all.subset(split_ref.train(f)));
                        let labels: Vec<bool> = test_idx.iter().map(|&i| all.y(i)).collect();
                        let scores: Vec<f64> =
                            test_idx.iter().map(|&i| model.score(all.x(i))).collect();
                        let predictions: Vec<bool> =
                            test_idx.iter().map(|&i| model.predict(all.x(i))).collect();
                        FoldOutcome {
                            summary: EvalSummary::compute(&labels, &predictions, &scores),
                            scores,
                            labels,
                        }
                    })
                    .collect();
                CvOutcome { folds: outcomes }.aggregate()
            })
            .collect()
    });

    GridResults {
        rows: NGG_ROWS
            .iter()
            .map(|k| format!("{} NO", k.name()))
            .collect(),
        summaries: (0..NGG_ROWS.len())
            .map(|row| columns.iter().map(|col| col[row]).collect())
            .collect(),
    }
}

/// Table 7: N-Gram Graphs classifier accuracy.
pub fn table7(grid: &GridResults) -> Table {
    grid.table("Table 7: N-Gram Graphs - Classifiers Accuracy", |s| {
        s.accuracy
    })
}

/// Table 8: N-Gram Graphs legitimate recall and precision.
pub fn table8(grid: &GridResults) -> (Table, Table) {
    (
        grid.table("Table 8a: N-Gram Graphs - legitimate recall", |s| {
            s.legitimate.recall
        }),
        grid.table("Table 8b: N-Gram Graphs - legitimate precision", |s| {
            s.legitimate.precision
        }),
    )
}

/// Table 9: N-Gram Graphs illegitimate recall and precision.
pub fn table9(grid: &GridResults) -> (Table, Table) {
    (
        grid.table("Table 9a: N-Gram Graphs - illegitimate recall", |s| {
            s.illegitimate.recall
        }),
        grid.table("Table 9b: N-Gram Graphs - illegitimate precision", |s| {
            s.illegitimate.precision
        }),
    )
}

/// Table 10: N-Gram Graphs area under the ROC curve.
pub fn table10(grid: &GridResults) -> Table {
    grid.table("Table 10: N-Gram Graphs - Area Under ROC Curve", |s| s.auc)
}

/// Table 11: the ten most linked-to external domains per class.
pub fn table11(ctx: &ReproContext) -> Table {
    let corpus = &ctx.corpus1;
    let per_class = |want_legit: bool| {
        let outbound: Vec<Vec<&str>> = (0..corpus.len())
            .filter(|&i| corpus.labels[i] == want_legit)
            .map(|i| {
                corpus.outbound[i]
                    .keys()
                    .map(String::as_str)
                    // Links to other pharmacies in P count too (that is the
                    // affiliate signal), but self-links never occur.
                    .collect()
            })
            .collect();
        top_linked(outbound, 10)
    };
    let legit = per_class(true);
    let illegit = per_class(false);
    let mut t = Table::new(
        "Table 11: Websites pointed to by legitimate and illegitimate pharmacies (top 10)",
        &["pointed by legitimate", "pointed by illegitimate"],
    );
    for i in 0..legit.len().max(illegit.len()) {
        t.push_row(vec![
            legit.get(i).map(|r| r.domain.clone()).unwrap_or_default(),
            illegit.get(i).map(|r| r.domain.clone()).unwrap_or_default(),
        ]);
    }
    t
}

/// Runs the network experiment once (shared by Tables 12–13).
pub fn network_outcome(ctx: &ReproContext) -> CvOutcome {
    evaluate_network_in(ctx.pipe1(), ctx.cv)
}

/// Table 12: network classification accuracy and AUC.
pub fn table12(network: &CvOutcome) -> Table {
    let s = network.aggregate();
    let mut t = Table::new(
        "Table 12: Network - Overall Accuracy and AUC ROC",
        &["Classifier", "Overall Accuracy", "AUC ROC"],
    );
    t.push_row(vec![
        "NB".into(),
        Table::fmt2(s.accuracy),
        Table::fmt2(s.auc),
    ]);
    t
}

/// Table 13: network per-class precision and recall.
pub fn table13(network: &CvOutcome) -> Table {
    let s = network.aggregate();
    let mut t = Table::new(
        "Table 13: Network - precision and recall",
        &[
            "Classifier",
            "legitimate precision",
            "legitimate recall",
            "illegitimate precision",
            "illegitimate recall",
        ],
    );
    t.push_row(vec![
        "NB".into(),
        Table::fmt3(s.legitimate.precision),
        Table::fmt3(s.legitimate.recall),
        Table::fmt3(s.illegitimate.precision),
        Table::fmt3(s.illegitimate.recall),
    ]);
    t
}

/// Table 14: ensemble selection vs the best text model (MLP on NGG) and
/// the network model, at the 1000-term subsample.
pub fn table14(ctx: &ReproContext, mlp_text: EvalSummary, network: EvalSummary) -> Table {
    let ensemble = evaluate_ensemble_in(ctx.pipe1(), Some(1000), ctx.cv);
    let s = ensemble.outcome.aggregate();
    let mut t = Table::new(
        "Table 14: Ensemble Classification Results (1000-term subsamples)",
        &[
            "Model",
            "Acc.",
            "legit Rec.",
            "legit Prec.",
            "illegit Rec.",
            "illegit Prec.",
            "AUC ROC",
        ],
    );
    let row = |name: &str, s: &EvalSummary| {
        vec![
            name.to_string(),
            Table::fmt2(s.accuracy),
            Table::fmt2(s.legitimate.recall),
            Table::fmt2(s.legitimate.precision),
            Table::fmt2(s.illegitimate.recall),
            Table::fmt2(s.illegitimate.precision),
            Table::fmt2(s.auc),
        ]
    };
    t.push_row(row("Ensem. Sel.", &s));
    t.push_row(row("Neural (Text)", &mlp_text));
    t.push_row(row("NB (Network)", &network));
    t
}

/// Table 15: pairwise orderedness of the four ranking variants,
/// dispatched across the executor.
pub fn table15(ctx: &ReproContext, exec: Executor) -> Table {
    let methods = [
        RankingMethod::TfIdf {
            kind: TextLearnerKind::Nbm,
            sampling: Sampling::None,
        },
        RankingMethod::TfIdf {
            kind: TextLearnerKind::Svm,
            sampling: Sampling::None,
        },
        RankingMethod::TfIdf {
            kind: TextLearnerKind::J48,
            sampling: Sampling::Smote,
        },
        RankingMethod::NggEquation3,
    ];
    let pairords: Vec<f64> = exec.run(methods.len(), |m| {
        evaluate_ranking_in(ctx.pipe1(), methods[m], Some(1000), ctx.cv).pairord
    });
    let mut t = Table::new(
        "Table 15: Ranking using TF-IDF and N-Gram Graphs (1000-term subsamples)",
        &["Method", "pairord"],
    );
    for (method, pairord) in methods.iter().zip(pairords) {
        t.push_row(vec![method.name(), Table::fmt3(pairord)]);
    }
    t
}

/// Tables 16 and 17: model evolution over time — AUC (16) and legitimate
/// precision (17) for Old-Old / New-New / Old-New at 250 and 1000 terms.
/// The six (classifier × size) drift rows dispatch across the executor.
pub fn table16_17(ctx: &ReproContext, exec: Executor) -> (Table, Table) {
    let headers = &[
        "Classifier",
        "Old-Old 250",
        "Old-Old 1000",
        "New-New 250",
        "New-New 1000",
        "Old-New 250",
        "Old-New 1000",
    ];
    let mut t16 = Table::new(
        "Table 16: TF-IDF - Model over Time - Area Under ROC Curve",
        headers,
    );
    let mut t17 = Table::new(
        "Table 17: TF-IDF - Model over Time - legitimate Precision",
        headers,
    );
    const SIZES: [Option<usize>; 2] = [Some(250), Some(1000)];
    let cells: Vec<drift_study::DriftRow> = exec.run(TFIDF_ROWS.len() * SIZES.len(), |idx| {
        let (kind, sampling) = TFIDF_ROWS[idx / SIZES.len()];
        let size = SIZES[idx % SIZES.len()];
        drift_study::drift_row_in(ctx.pipe1(), ctx.pipe2(), kind, sampling, size, ctx.cv)
    });
    for (r, &(kind, sampling)) in TFIDF_ROWS.iter().enumerate() {
        let label = format!("{} {}", kind.name(), sampling.abbreviation());
        let rows = &cells[r * SIZES.len()..(r + 1) * SIZES.len()];
        let cells_for = |pick: &dyn Fn(&drift_study::DriftCell) -> f64| -> Vec<String> {
            let mut c = vec![label.clone()];
            for scenario in 0..3 {
                for row in rows {
                    let cell = match scenario {
                        0 => row.old_old,
                        1 => row.new_new,
                        _ => row.old_new,
                    };
                    c.push(Table::fmt2(pick(&cell)));
                }
            }
            c
        };
        t16.push_row(cells_for(&|c| c.auc));
        t17.push_row(cells_for(&|c| c.legitimate_precision));
    }
    (t16, t17)
}

/// The §6.4 outlier analysis, printed alongside Table 15.
pub fn outlier_analysis(ctx: &ReproContext) -> Table {
    let ranking = evaluate_ranking_in(
        ctx.pipe1(),
        RankingMethod::TfIdf {
            kind: TextLearnerKind::Nbm,
            sampling: Sampling::None,
        },
        Some(1000),
        ctx.cv,
    );
    let k = (ctx.corpus1.len() / 30).clamp(3, 20);
    let report = pharmaverify_core::ranking_outliers(&ranking, k);
    let mut t = Table::new(
        "Outlier analysis (Section 6.4)",
        &[
            "Outlier group",
            "Expert-finding profile",
            "Fraction matching",
        ],
    );
    t.push_row(vec![
        format!("top-{k} illegitimate"),
        "off-network mimics".into(),
        Table::fmt2(report.illegitimate_off_network_fraction()),
    ]);
    t.push_row(vec![
        format!("bottom-{k} legitimate"),
        "refill-only storefronts".into(),
        Table::fmt2(report.legitimate_refill_only_fraction()),
    ]);
    t
}

/// Ablation: TrustRank-seeded network features vs unbiased PageRank —
/// quantifies how much of the network signal comes from the trusted seed
/// (the design choice §4.2 motivates).
pub fn ablation_pagerank(ctx: &ReproContext) -> Table {
    use pharmaverify_ml::{GaussianNaiveBayes, Model};
    use pharmaverify_net::TrustRankConfig;
    let corpus = &ctx.corpus1;
    let pipe = ctx.pipe1();
    let artifacts = pipe.web_graph();
    let pr = artifacts.graph.pagerank(&TrustRankConfig::default());
    let scale = artifacts.graph.node_count() as f64;
    let split = pipe.fold_split(ctx.cv.k, ctx.cv.seed);
    let mut outcomes = Vec::new();
    for (_, train_idx, test_idx) in split.iter() {
        let mut train = Dataset::new(1);
        for &i in train_idx {
            let score = pr[artifacts.pharmacy_nodes[i] as usize] * scale;
            train.push(SparseVector::from_pairs(vec![(0, score)]), corpus.labels[i]);
        }
        let model = GaussianNaiveBayes::default().fit(&train);
        let labels: Vec<bool> = test_idx.iter().map(|&i| corpus.labels[i]).collect();
        let scores: Vec<f64> = test_idx
            .iter()
            .map(|&i| {
                model.score(&SparseVector::from_pairs(vec![(
                    0,
                    pr[artifacts.pharmacy_nodes[i] as usize] * scale,
                )]))
            })
            .collect();
        let predictions: Vec<bool> = scores.iter().map(|&s| s >= 0.5).collect();
        outcomes.push(FoldOutcome {
            summary: EvalSummary::compute(&labels, &predictions, &scores),
            scores,
            labels,
        });
    }
    let pr_summary = CvOutcome { folds: outcomes }.aggregate();
    let tr_summary = network_outcome(ctx).aggregate();
    let mut t = Table::new(
        "Ablation: TrustRank seed vs unbiased PageRank (network feature)",
        &["Feature", "Accuracy", "AUC ROC", "legit recall"],
    );
    t.push_row(vec![
        "TrustRank (seeded)".into(),
        Table::fmt2(tr_summary.accuracy),
        Table::fmt2(tr_summary.auc),
        Table::fmt2(tr_summary.legitimate.recall),
    ]);
    t.push_row(vec![
        "PageRank (unseeded)".into(),
        Table::fmt2(pr_summary.accuracy),
        Table::fmt2(pr_summary.auc),
        Table::fmt2(pr_summary.legitimate.recall),
    ]);
    t
}

/// Ablation: the full sampling grid the paper ran but reported only the
/// best of ("we performed various tests with all combinations among
/// classifiers and sampling techniques", §6.3.1). One row per classifier
/// × sampling treatment, at the 1000-term subsample.
pub fn ablation_sampling(ctx: &ReproContext) -> Table {
    let mut t = Table::new(
        "Ablation: sampling treatments (1000-term subsamples)",
        &[
            "Classifier",
            "Sampling",
            "Acc.",
            "legit Rec.",
            "legit Prec.",
            "AUC ROC",
        ],
    );
    for kind in [
        TextLearnerKind::Nbm,
        TextLearnerKind::Svm,
        TextLearnerKind::J48,
    ] {
        for sampling in [Sampling::None, Sampling::Undersample, Sampling::Smote] {
            let s = tfidf_single(ctx.pipe1(), kind, sampling, Some(1000), ctx.cv);
            t.push_row(vec![
                kind.name().to_string(),
                sampling.abbreviation().to_string(),
                Table::fmt2(s.accuracy),
                Table::fmt2(s.legitimate.recall),
                Table::fmt2(s.legitimate.precision),
                Table::fmt2(s.auc),
            ]);
        }
    }
    t
}

/// Ablation: sensitivity to training-label noise, following the
/// classifier-behaviour-under-mislabeling study the paper cites (\[24\],
/// Mirylenka et al., DAMI 2017). A seeded fraction of *training* labels
/// is flipped per fold; test labels stay clean.
pub fn ablation_label_noise(ctx: &ReproContext) -> Table {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    let corpus = &ctx.corpus1;
    let cv = ctx.cv;
    let pipe = ctx.pipe1();
    let docs = pipe.subsampled_docs(Some(1000), cv.seed);
    let split = pipe.fold_split(cv.k, cv.seed);
    let mut t = Table::new(
        "Ablation: training-label noise (1000-term subsamples)",
        &["Classifier", "0%", "5%", "10%", "20%"],
    );
    for kind in [TextLearnerKind::Nbm, TextLearnerKind::Svm] {
        let mut cells = vec![kind.name().to_string()];
        for noise in [0.0, 0.05, 0.10, 0.20] {
            let mut outcomes = Vec::new();
            for (f, train_idx, test_idx) in split.iter() {
                let mut rng = SmallRng::seed_from_u64(cv.seed ^ 0x4015e ^ (f as u64));
                let tfidf = pipe.fitted_tfidf(Some(1000), cv.seed, Some(f), train_idx);
                let weighting = kind.weighting();
                let mut train = Dataset::new(tfidf.vocabulary().len().max(1));
                for &i in train_idx {
                    let label = if noise > 0.0 && rng.gen_bool(noise) {
                        !corpus.labels[i]
                    } else {
                        corpus.labels[i]
                    };
                    train.push(weighting.vectorize(&tfidf, &docs[i]), label);
                }
                let model = kind.learner().fit(&train);
                let labels: Vec<bool> = test_idx.iter().map(|&i| corpus.labels[i]).collect();
                let scores: Vec<f64> = test_idx
                    .iter()
                    .map(|&i| model.score(&weighting.vectorize(&tfidf, &docs[i])))
                    .collect();
                let predictions: Vec<bool> = test_idx
                    .iter()
                    .map(|&i| model.predict(&weighting.vectorize(&tfidf, &docs[i])))
                    .collect();
                outcomes.push(FoldOutcome {
                    summary: EvalSummary::compute(&labels, &predictions, &scores),
                    scores,
                    labels,
                });
            }
            let agg = CvOutcome { folds: outcomes }.aggregate();
            cells.push(Table::fmt2(agg.auc));
        }
        t.push_row(cells);
    }
    t
}

/// Future work §7(a): network-analysis variants — the paper's baseline,
/// the Anti-TrustRank distrust feature, and the extended graph with
/// non-pharmacy referrer portals (two-hop trust paths).
pub fn future_work_network(ctx: &ReproContext) -> Table {
    use pharmaverify_core::extensions::{
        build_extended_web_graph, evaluate_network_variant, portal_links, NetworkVariant,
    };
    let corpus = &ctx.corpus1;
    let base = ctx.pipe1().web_graph();
    let portals = portal_links(&ctx.snapshot1, &pharmaverify_crawl::CrawlConfig::default());
    let extended = build_extended_web_graph(corpus, &portals);
    let mut t = Table::new(
        "Future work (Section 7a): network-analysis variants",
        &["Variant", "Acc.", "AUC ROC", "legit Rec.", "legit Prec."],
    );
    let rows = [
        ("TrustRank (paper baseline)", &*base, NetworkVariant::Trust),
        (
            "+ Anti-TrustRank distrust",
            &*base,
            NetworkVariant::TrustAndDistrust,
        ),
        (
            "Extended graph (referrer portals)",
            &extended,
            NetworkVariant::Trust,
        ),
        (
            "Extended + distrust",
            &extended,
            NetworkVariant::TrustAndDistrust,
        ),
    ];
    for (name, artifacts, variant) in rows {
        let s = evaluate_network_variant(corpus, artifacts, variant, ctx.cv).aggregate();
        t.push_row(vec![
            name.to_string(),
            Table::fmt2(s.accuracy),
            Table::fmt2(s.auc),
            Table::fmt2(s.legitimate.recall),
            Table::fmt2(s.legitimate.precision),
        ]);
    }
    t
}

/// Future work §7(b): one classifier over combined text + network
/// features, compared with the best single-view models.
pub fn future_work_combined(ctx: &ReproContext) -> Table {
    use pharmaverify_core::extensions::evaluate_combined_in;
    let combined = evaluate_combined_in(ctx.pipe1(), Some(1000), ctx.cv).aggregate();
    let text_svm = tfidf_single(
        ctx.pipe1(),
        TextLearnerKind::Svm,
        Sampling::None,
        Some(1000),
        ctx.cv,
    );
    let network = network_outcome(ctx).aggregate();
    let mut t = Table::new(
        "Future work (Section 7b): combined text + network features (SVM, 1000 terms)",
        &["Model", "Acc.", "AUC ROC", "legit Rec.", "legit Prec."],
    );
    for (name, s) in [
        ("Combined (tfidf + NGG + trust)", combined),
        ("Text only (tfidf SVM)", text_svm),
        ("Network only (NB)", network),
    ] {
        t.push_row(vec![
            name.to_string(),
            Table::fmt2(s.accuracy),
            Table::fmt2(s.auc),
            Table::fmt2(s.legitimate.recall),
            Table::fmt2(s.legitimate.precision),
        ]);
    }
    t
}

/// Ablation: the three text representations of the comparison study the
/// paper builds on (\[13\], Giannakopoulos et al.): Term Vector (TF-IDF),
/// Character N-Grams (bag of char 4-grams), and N-Gram Graphs — all under
/// the same SVM, at the 1000-term subsample.
pub fn ablation_representations(ctx: &ReproContext) -> Table {
    use pharmaverify_text::CharNgramModel;

    let corpus = &ctx.corpus1;
    let cv = ctx.cv;
    let pipe = ctx.pipe1();
    let split = pipe.fold_split(cv.k, cv.seed);
    let texts = pipe.ngg_texts(Some(1000), cv.seed);

    let mut t = Table::new(
        "Ablation: text representations under SVM (1000-term subsamples, cf. [13])",
        &[
            "Representation",
            "Acc.",
            "legit Rec.",
            "legit Prec.",
            "AUC ROC",
        ],
    );

    // Term Vector and N-Gram Graphs reuse the standard pipelines.
    let term_vector = tfidf_single(pipe, TextLearnerKind::Svm, Sampling::None, Some(1000), cv);
    let ngg = {
        let learner = TextLearnerKind::Svm.ngg_learner();
        evaluate_ngg_in(pipe, learner.as_ref(), Some(1000), cv).aggregate()
    };

    // Character N-Grams: char-4-gram tf·idf vectors under the same SVM.
    let char_ngrams = {
        let mut outcomes = Vec::new();
        for (_, train_idx, test_idx) in split.iter() {
            let train_texts: Vec<&str> = train_idx.iter().map(|&i| texts[i].as_str()).collect();
            let model = CharNgramModel::fit(&train_texts, 4);
            let dim = model.vocabulary_size().max(1);
            let mut train = Dataset::new(dim);
            for &i in train_idx {
                train.push(model.transform(&texts[i]), corpus.labels[i]);
            }
            let svm = TextLearnerKind::Svm.learner().fit(&train);
            let labels: Vec<bool> = test_idx.iter().map(|&i| corpus.labels[i]).collect();
            let scores: Vec<f64> = test_idx
                .iter()
                .map(|&i| svm.score(&model.transform(&texts[i])))
                .collect();
            let predictions: Vec<bool> = test_idx
                .iter()
                .map(|&i| svm.predict(&model.transform(&texts[i])))
                .collect();
            outcomes.push(FoldOutcome {
                summary: EvalSummary::compute(&labels, &predictions, &scores),
                scores,
                labels,
            });
        }
        CvOutcome { folds: outcomes }.aggregate()
    };

    for (name, s) in [
        ("Term Vector (TF-IDF)", term_vector),
        ("Character N-Grams", char_ngrams),
        ("N-Gram Graphs (8 sims)", ngg),
    ] {
        t.push_row(vec![
            name.to_string(),
            Table::fmt2(s.accuracy),
            Table::fmt2(s.legitimate.recall),
            Table::fmt2(s.legitimate.precision),
            Table::fmt2(s.auc),
        ]);
    }
    t
}

/// Ablation: what the SVM should contribute to the ranking score — the
/// paper's hard {0, 1} decision (§5), the raw margin, or a
/// Platt-calibrated probability — measured by pairwise orderedness.
pub fn ablation_svm_ranking(ctx: &ReproContext) -> Table {
    use pharmaverify_ml::metrics::pairwise_orderedness;
    use pharmaverify_ml::svm::LinearSvm;
    use pharmaverify_ml::PlattScaler;

    let corpus = &ctx.corpus1;
    let cv = ctx.cv;
    let pipe = ctx.pipe1();
    let docs = pipe.subsampled_docs(Some(1000), cv.seed);
    let split = pipe.fold_split(cv.k, cv.seed);
    let mut hard = vec![0.0; corpus.len()];
    let mut margin = vec![0.0; corpus.len()];
    let mut platt = vec![0.0; corpus.len()];

    for (f, train_idx, test_idx) in split.iter() {
        let tfidf = pipe.fitted_tfidf(Some(1000), cv.seed, Some(f), train_idx);
        let mut train = Dataset::new(tfidf.vocabulary().len().max(1));
        for &i in train_idx {
            train.push(tfidf.transform(&docs[i]), corpus.labels[i]);
        }
        let model = LinearSvm::default().fit_svm(&train);
        // Platt scaling fitted on the training decisions.
        let train_decisions: Vec<f64> = train_idx
            .iter()
            .map(|&i| model.decision(&tfidf.transform(&docs[i])))
            .collect();
        let train_labels: Vec<bool> = train_idx.iter().map(|&i| corpus.labels[i]).collect();
        let scaler = PlattScaler::fit(&train_decisions, &train_labels);
        for &i in test_idx {
            let d = model.decision(&tfidf.transform(&docs[i]));
            hard[i] = if d >= 0.0 { 1.0 } else { 0.0 };
            margin[i] = d;
            platt[i] = scaler.map(|s| s.calibrate(d)).unwrap_or(0.5);
        }
    }
    let mut t = Table::new(
        "Ablation: SVM contribution to textRank (pairwise orderedness)",
        &["SVM score used", "pairord"],
    );
    for (name, scores) in [
        ("hard {0,1} decision (paper, Section 5)", &hard),
        ("raw margin", &margin),
        ("Platt-calibrated probability", &platt),
    ] {
        let p = pairwise_orderedness(scores, &corpus.labels).unwrap_or(1.0);
        t.push_row(vec![name.to_string(), Table::fmt3(p)]);
    }
    t
}

/// Ablation: information-gain feature selection — how small the TF-IDF
/// vocabulary can get before accuracy suffers (cf. the scalable feature
/// selection line of work the paper cites, \[7\]).
pub fn ablation_feature_selection(ctx: &ReproContext) -> Table {
    use pharmaverify_ml::{project, top_k_features};

    let corpus = &ctx.corpus1;
    let cv = ctx.cv;
    let pipe = ctx.pipe1();
    let docs = pipe.subsampled_docs(Some(1000), cv.seed);
    let split = pipe.fold_split(cv.k, cv.seed);
    let mut t = Table::new(
        "Ablation: information-gain feature selection (NBM, 1000-term subsamples)",
        &[
            "Kept features",
            "Acc.",
            "legit Rec.",
            "legit Prec.",
            "AUC ROC",
        ],
    );
    for keep in [50usize, 200, 1000, usize::MAX] {
        let mut outcomes = Vec::new();
        for (f, train_idx, test_idx) in split.iter() {
            let tfidf = pipe.fitted_tfidf(Some(1000), cv.seed, Some(f), train_idx);
            let dim = tfidf.vocabulary().len().max(1);
            let mut train = Dataset::new(dim);
            for &i in train_idx {
                train.push(tfidf.term_counts(&docs[i]), corpus.labels[i]);
            }
            let kept = top_k_features(&train, keep.min(dim));
            let train = project(&train, &kept);
            let vectorize = |i: usize| {
                let mut full = Dataset::new(dim);
                full.push(tfidf.term_counts(&docs[i]), corpus.labels[i]);
                let p = project(&full, &kept);
                p.x(0).clone()
            };
            let model = TextLearnerKind::Nbm.learner().fit(&train);
            let labels: Vec<bool> = test_idx.iter().map(|&i| corpus.labels[i]).collect();
            let scores: Vec<f64> = test_idx
                .iter()
                .map(|&i| model.score(&vectorize(i)))
                .collect();
            let predictions: Vec<bool> = test_idx
                .iter()
                .map(|&i| model.predict(&vectorize(i)))
                .collect();
            outcomes.push(FoldOutcome {
                summary: EvalSummary::compute(&labels, &predictions, &scores),
                scores,
                labels,
            });
        }
        let s = CvOutcome { folds: outcomes }.aggregate();
        t.push_row(vec![
            if keep == usize::MAX {
                "all".to_string()
            } else {
                keep.to_string()
            },
            Table::fmt2(s.accuracy),
            Table::fmt2(s.legitimate.recall),
            Table::fmt2(s.legitimate.precision),
            Table::fmt2(s.auc),
        ]);
    }
    t
}

/// Robustness study: OPC quality (accuracy, AUC of the paper's primary
/// NBM classifier) and OPR pairwise orderedness as a function of the
/// injected fault rate. Dataset 1 is re-crawled through a seeded
/// [`FaultyWeb`] at each rate — rate 0 reproduces the clean corpus
/// exactly (and therefore shares its cached artifacts), while nonzero
/// rates degrade summaries through retry exhaustion and breaker trips.
/// The fault universe derives from the corpus RNG seed, never the wall
/// clock, so two runs at the same rate are byte-identical.
pub fn robustness_study(ctx: &ReproContext, exec: Executor, max_rate: f64) -> Table {
    /// Salt separating the fault universe from every other seeded draw.
    const FAULT_SALT: u64 = 0xFA17;
    let rates: [f64; 4] = [0.0, max_rate * 0.25, max_rate * 0.5, max_rate];

    struct RateRow {
        opc: EvalSummary,
        pairord: f64,
        degraded: usize,
        failed: usize,
        retries: usize,
    }

    let rates_ref = &rates;
    let rows: Vec<RateRow> = exec.run(rates.len(), |i| {
        let rate = rates_ref[i];
        let config = FaultConfig::new(rate, REPRO_SEED ^ FAULT_SALT ^ ((i as u64) << 24));
        let web = FaultyWeb::new(&ctx.snapshot1.web, config);
        // lint:allow(no-panic): the synthetic snapshot's seed URLs are
        // well-formed by construction (see ReproContext::new); fault
        // injection only affects fetches, never URL parsing.
        #[allow(clippy::expect_used)]
        let corpus = extract_corpus_from(&ctx.snapshot1.sites, &web, &CrawlConfig::default())
            .expect("synthetic snapshot extracts");
        let telemetry = corpus.total_fetch_telemetry();
        let opc = tfidf_single(
            Pipeline::new(&ctx.store, &corpus),
            TextLearnerKind::Nbm,
            Sampling::None,
            Some(1000),
            ctx.cv,
        );
        let pairord = evaluate_ranking_in(
            Pipeline::new(&ctx.store, &corpus),
            RankingMethod::TfIdf {
                kind: TextLearnerKind::Nbm,
                sampling: Sampling::None,
            },
            Some(1000),
            ctx.cv,
        )
        .pairord;
        RateRow {
            opc,
            pairord,
            degraded: corpus.degraded_sites(),
            failed: telemetry.failed_urls(),
            retries: telemetry.retries,
        }
    });

    let mut t = Table::new(
        "Robustness: OPC/OPR vs injected fault rate (NBM, 1000-term subsamples)",
        &[
            "Fault rate",
            "OPC Acc.",
            "OPC AUC",
            "OPR pairord",
            "degraded sites",
            "failed fetches",
            "retries",
        ],
    );
    for (rate, row) in rates.iter().zip(rows) {
        t.push_row(vec![
            format!("{rate:.3}"),
            Table::fmt2(row.opc.accuracy),
            Table::fmt2(row.opc.auc),
            Table::fmt3(row.pairord),
            row.degraded.to_string(),
            row.failed.to_string(),
            row.retries.to_string(),
        ]);
    }
    t
}

/// Convenience: run the TF-IDF pipeline restricted to one subsample size
/// (used by the ablations and smoke tests).
pub fn tfidf_single(
    pipe: Pipeline<'_>,
    kind: TextLearnerKind,
    sampling: Sampling,
    size: Option<usize>,
    cv: CvConfig,
) -> EvalSummary {
    let learner: Box<dyn Learner> = kind.learner();
    evaluate_tfidf_in(pipe, learner.as_ref(), sampling, kind.weighting(), size, cv).aggregate()
}
