//! The online-verification study: replays a drifting workload against a
//! live service, lets the drift monitor trigger a seeded retrain, and
//! hot-swaps the retrained model mid-replay.
//!
//! Like the serving study, the section is a **pure suffix** of the
//! report: a run with `--online-waves N` prints everything a plain run
//! prints, then this table. Every row is a deterministic count — drift
//! windows, triggers, retrains, model versions, per-version verdict
//! tallies — byte-identical across worker counts for the same seed. The
//! xtask determinism audit byte-compares this section between
//! `--serve-workers 1` and `--serve-workers 4` runs.

use crate::context::{ReproContext, REPRO_SEED};
use pharmaverify_core::report::Table;
use pharmaverify_core::{TextLearnerKind, TrainedVerifier};
use pharmaverify_obs::Registry;
use pharmaverify_serve::{replay_online, OnlineConfig, OnlineStats};
use std::sync::Arc;

/// Term-subsample size of the served verifier's text model (matches the
/// serving study).
const ONLINE_SUBSAMPLE: usize = 1000;

/// Runs the online study: fits a verifier on Dataset 1, replays `waves`
/// waves of a mix-shifting workload with `workers` workers, and returns
/// the rendered section plus the raw tally. Records into the
/// process-global registry.
pub fn online_study(ctx: &ReproContext, waves: usize, workers: usize) -> (Table, OnlineStats) {
    online_study_in(ctx, waves, workers, pharmaverify_obs::global_arc())
}

/// [`online_study`] with an injected registry for test isolation.
pub fn online_study_in(
    ctx: &ReproContext,
    waves: usize,
    workers: usize,
    obs: Arc<Registry>,
) -> (Table, OnlineStats) {
    let _span = obs.span("report/section/online (drift replay)");
    let verifier = Arc::new(TrainedVerifier::fit(
        &ctx.corpus1,
        TextLearnerKind::Nbm,
        Default::default(),
        Some(ONLINE_SUBSAMPLE),
        REPRO_SEED,
    ));
    let config = OnlineConfig::new(waves, workers, REPRO_SEED);
    let stats = replay_online(
        verifier,
        &ctx.snapshot1,
        &ctx.snapshot2,
        &config,
        Arc::clone(&obs),
    );

    // As with the serving section, the worker count stays out of the
    // title: the section must be byte-identical at any worker count.
    let mut t = Table::new(
        &format!("Online: drift-triggered retrain ({waves} waves, seed {REPRO_SEED})"),
        &["Metric", "Count"],
    );
    for (label, value) in stats.lines() {
        t.push_row(vec![label, value.to_string()]);
    }
    (t, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Scale;
    use pharmaverify_obs::VirtualClock;

    fn private_obs() -> Arc<Registry> {
        Arc::new(Registry::with_clock(Box::new(VirtualClock::new(0))))
    }

    #[test]
    fn online_section_is_worker_count_independent() {
        let ctx = ReproContext::new(Scale::Small);
        let (table_1, stats_1) = online_study_in(&ctx, 6, 1, private_obs());
        let (table_4, stats_4) = online_study_in(&ctx, 6, 4, private_obs());
        assert_eq!(stats_1, stats_4, "worker count leaked into the tally");
        assert_eq!(table_1.to_string(), table_4.to_string());
    }

    #[test]
    fn online_section_shows_a_swap_under_drift() {
        let ctx = ReproContext::new(Scale::Small);
        let (table, stats) = online_study_in(&ctx, 8, 2, private_obs());
        let text = table.to_string();
        assert!(text.contains("Online: drift-triggered retrain (8 waves"));
        for (label, _) in stats.lines() {
            assert!(text.contains(&label), "missing line {label:?}:\n{text}");
        }
        assert!(
            stats.triggers >= 1,
            "no drift trigger at 8 waves: {stats:?}"
        );
        assert!(stats.final_version >= 1);
        assert_eq!(stats.responses, stats.serving.accepted);
    }
}
