//! Experiment harness: regenerates every table and figure of the paper's
//! evaluation (§6) against the synthetic corpus.
//!
//! Entry points:
//!
//! * `cargo run --release -p pharmaverify-bench --bin repro` — prints all
//!   tables (`--table N` / `--figure 3` select one; `--scale small|medium|paper`
//!   controls corpus size, default `paper`);
//! * `cargo bench --bench tables` — same output, produced as part of the
//!   benchmark run so the experiment record lands in `bench_output.txt`;
//! * `cargo bench --bench micro` — criterion micro-benchmarks of the hot
//!   substrate paths.
//!
//! Independent tables (and the cells within the classifier grids) run in
//! parallel over a shared artifact store; `PHARMAVERIFY_JOBS` (or
//! `repro --jobs N`) sets the worker count, defaulting to the available
//! cores. Output is byte-identical at any width — see `DESIGN.md`,
//! "Artifact pipeline & caching". `repro --serve-workload N` appends the
//! serving study (`serving::serving_study`): a seeded workload replayed
//! through the concurrent verification service, byte-identical at any
//! `--serve-workers` count — see `DESIGN.md` §10. `repro
//! --online-waves N` appends the online study (`online::online_study`):
//! a drifting workload whose drift monitor triggers a seeded retrain
//! and a mid-replay model hot-swap — see `DESIGN.md` §12. `repro
//! --attack <kind> --attack-strength S` appends the adversarial study
//! (`adversarial::adversarial_study`): link-farm / cloaking / mimicry
//! attacks swept over strengths 0, S/2, S with the spam-mass defense
//! off and on — see `DESIGN.md` §13. `repro --federation N` appends the
//! federation study (`federation::federation_study`): the same seeded
//! workload replayed through the tiered verdict federation (response
//! cache → persisted store → text-only fast path → graph-spliced slow
//! path), byte-identical at any `--serve-workers` count, with
//! `--staleness-budget` / `--fast-confidence` policy knobs — see
//! `DESIGN.md` §14.
//!
//! Numbers are *shape*-comparable to the paper, not identical: the corpus
//! is synthetic (see `DESIGN.md` §1). EXPERIMENTS.md records the
//! paper-vs-measured comparison for every table.

pub mod adversarial;
pub mod context;
pub mod federation;
pub mod figures;
pub mod online;
pub mod report;
pub mod scale;
pub mod serving;
pub mod tables;

pub use adversarial::adversarial_study;
pub use context::{ReproContext, Scale, ScaleError};
pub use federation::federation_study;
pub use online::online_study;
pub use report::{render_report, render_report_with, ReproReport, Selection};
pub use scale::{build_web_tier, rank_web_tier, scale_section, WebTierBuild, WebTierScores};
pub use serving::serving_study;
