//! The serving study: replays a seeded workload against a
//! [`pharmaverify_serve::VerifyService`] and renders the deterministic
//! tally as a report section.
//!
//! The section is a **pure suffix** of the report (like the robustness
//! study): a run with `--serve-workload N` prints everything a plain run
//! prints, then this table. Its contents are counts and verdict tallies
//! only — throughput and latency quantiles are timing-dependent, so the
//! `repro` binary reports them on stderr, never here. The xtask
//! determinism audit byte-compares this section between
//! `--serve-workers 1` and `--serve-workers 4` runs of the same seed.

use crate::context::{ReproContext, REPRO_SEED};
use pharmaverify_core::report::Table;
use pharmaverify_core::{TextLearnerKind, TrainedVerifier};
use pharmaverify_obs::Registry;
use pharmaverify_serve::{replay_workload, ReplayConfig, ServingStats};
use std::sync::Arc;

/// Term-subsample size of the served verifier's text model (the paper's
/// best-OPC column).
const SERVE_SUBSAMPLE: usize = 1000;

/// Runs the serving study: fits a verifier on Dataset 1, replays
/// `requests` seeded requests with `workers` workers against the
/// Dataset 2 web, and returns the rendered section plus the raw tally.
/// Everything in the table is worker-count-independent by the service's
/// determinism contract. Records into the process-global registry (so
/// `serve/*` metrics land in the trace).
pub fn serving_study(ctx: &ReproContext, requests: usize, workers: usize) -> (Table, ServingStats) {
    serving_study_in(ctx, requests, workers, pharmaverify_obs::global_arc())
}

/// [`serving_study`] with an injected registry — tests use a private
/// [`Registry`] so concurrently running replays cannot interleave their
/// counter deltas.
pub fn serving_study_in(
    ctx: &ReproContext,
    requests: usize,
    workers: usize,
    obs: Arc<Registry>,
) -> (Table, ServingStats) {
    let _span = obs.span("report/section/serving (workload replay)");
    let verifier = Arc::new(TrainedVerifier::fit(
        &ctx.corpus1,
        TextLearnerKind::Nbm,
        Default::default(),
        Some(SERVE_SUBSAMPLE),
        REPRO_SEED,
    ));
    let config = ReplayConfig::new(requests, workers, REPRO_SEED);
    let stats = replay_workload(
        verifier,
        &ctx.snapshot1,
        &ctx.snapshot2,
        &config,
        Arc::clone(&obs),
    );

    // The title deliberately omits the worker count: the section must be
    // byte-identical at any worker count for the same seed.
    let mut t = Table::new(
        &format!("Serving: workload replay ({requests} requests, seed {REPRO_SEED})"),
        &["Metric", "Count"],
    );
    for (label, value) in stats.lines() {
        t.push_row(vec![label, value.to_string()]);
    }
    (t, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Scale;
    use pharmaverify_obs::VirtualClock;

    fn private_obs() -> Arc<Registry> {
        Arc::new(Registry::with_clock(Box::new(VirtualClock::new(0))))
    }

    #[test]
    fn serving_section_is_worker_count_independent() {
        let ctx = ReproContext::new(Scale::Small);
        let (table_1, stats_1) = serving_study_in(&ctx, 48, 1, private_obs());
        let (table_4, stats_4) = serving_study_in(&ctx, 48, 4, private_obs());
        assert_eq!(stats_1, stats_4, "worker count leaked into the tally");
        assert_eq!(table_1.to_string(), table_4.to_string());
    }

    #[test]
    fn serving_section_renders_every_stat_line() {
        let ctx = ReproContext::new(Scale::Small);
        let (table, stats) = serving_study_in(&ctx, 32, 2, private_obs());
        let text = table.to_string();
        assert!(text.contains("Serving: workload replay (32 requests"));
        for (label, _) in stats.lines() {
            assert!(text.contains(&label), "missing line {label:?}:\n{text}");
        }
        assert_eq!(stats.requests, 32);
        assert!(stats.cache_misses > 0);
    }
}
