//! The web-scale tier study: streams a sharded synthetic web (10⁵–10⁶
//! domains) through the CSR graph builder, runs the block TrustRank
//! kernel over the frozen graph, and renders the deterministic facts as a
//! report section.
//!
//! The section is a **pure suffix** of the report (like the robustness
//! and serving studies): a `--scale web` run prints everything a plain
//! small run prints, then this table. Its contents are counts and
//! bit-stable score facts only — throughput (domains/sec generated,
//! edges/sec per power iteration) is timing-dependent, so the `repro`
//! binary reports it on stderr, never here. The xtask determinism audit
//! byte-compares this section between 1- and 4-worker runs.
//!
//! The API is phased (build → rank → render) so the binary can put a
//! wall clock around each phase without the library touching one.

use crate::context::REPRO_SEED;
use pharmaverify_core::report::Table;
use pharmaverify_corpus::{ShardedWebGenerator, WebScaleConfig};
use pharmaverify_net::{BlockDispatch, CsrGraph, GraphBuilder, NodeId, TrustRankConfig};
use pharmaverify_obs::Registry;

/// The frozen web-tier graph plus everything the rank phase and the
/// report need to know about how it was built.
#[derive(Debug)]
pub struct WebTierBuild {
    /// The streaming generator's configuration.
    pub config: WebScaleConfig,
    /// The frozen CSR graph.
    pub graph: CsrGraph,
    /// Node ids of the trusted seed pharmacies.
    pub seeds: Vec<NodeId>,
    /// Total pharmacy domains (seeds + candidates).
    pub pharmacies: usize,
    /// Raw links produced by the generator, before duplicate merging.
    pub generated_links: usize,
    /// Number of shards the stream produced.
    pub shards: usize,
}

/// Streams the sharded web into a [`GraphBuilder`] and freezes it. Peak
/// resident generator state is one shard ([`WebScaleConfig::shard_size`]
/// domains); the builder itself grows to the full graph, which is the
/// point of the compact representation.
pub fn build_web_tier(domains: usize, obs: &Registry) -> WebTierBuild {
    let _span = obs.span("bench/scale/build");
    let config = WebScaleConfig::new(domains, REPRO_SEED);
    let mut builder = GraphBuilder::new();
    let mut pharmacies = 0usize;
    let mut shards = 0usize;
    for shard in ShardedWebGenerator::new(config) {
        shards += 1;
        for record in &shard {
            let node = if record.is_pharmacy {
                pharmacies += 1;
                builder.add_pharmacy(&record.domain)
            } else {
                builder.add_external(&record.domain)
            };
            for (target, weight) in &record.links {
                builder.add_link(node, target, *weight);
            }
        }
    }
    let generated_links = builder.raw_edge_count();
    let graph = builder.freeze();
    let trusted = ShardedWebGenerator::new(config).trusted_domains();
    let seeds: Vec<NodeId> = trusted.iter().filter_map(|d| graph.node(d)).collect();
    assert_eq!(
        seeds.len(),
        trusted.len(),
        "trusted seeds are generated domains and must all intern"
    );
    obs.set_gauge("bench/scale/nodes", graph.node_count() as i64);
    obs.set_gauge("bench/scale/edges", graph.edge_count() as i64);
    WebTierBuild {
        config,
        graph,
        seeds,
        pharmacies,
        generated_links,
        shards,
    }
}

/// The rank phase's output: the trust vector plus its configuration.
#[derive(Debug)]
pub struct WebTierScores {
    /// TrustRank scores over the web-tier graph, seeded at the trusted
    /// prefix. Bit-identical at any dispatch width.
    pub trust: Vec<f64>,
    /// The power-iteration configuration that produced them.
    pub config: TrustRankConfig,
}

/// Runs the block TrustRank kernel over the frozen web-tier graph on the
/// given dispatcher.
pub fn rank_web_tier(
    build: &WebTierBuild,
    dispatch: &dyn BlockDispatch,
    obs: &Registry,
) -> WebTierScores {
    let _span = obs.span("bench/scale/rank");
    let config = TrustRankConfig::default();
    let trust = build.graph.trust_rank_with(&build.seeds, &config, dispatch);
    WebTierScores { trust, config }
}

/// Renders the deterministic scale section. Everything here is a pure
/// function of the build seed — no worker count, no wall clock.
pub fn scale_section(build: &WebTierBuild, scores: &WebTierScores) -> Table {
    let mut t = Table::new(
        &format!(
            "Scale: web tier ({} domains, seed {REPRO_SEED})",
            build.config.domains
        ),
        &["Metric", "Value"],
    );
    t.push_row(vec![
        "Domains generated".into(),
        build.config.domains.to_string(),
    ]);
    t.push_row(vec!["Shards streamed".into(), build.shards.to_string()]);
    t.push_row(vec![
        "Graph nodes (peak)".into(),
        build.graph.node_count().to_string(),
    ]);
    t.push_row(vec![
        "Graph edges (peak, merged)".into(),
        build.graph.edge_count().to_string(),
    ]);
    t.push_row(vec![
        "Links generated (raw)".into(),
        build.generated_links.to_string(),
    ]);
    // The generator's link-target map changed in v8 (pure-integer
    // self-excluding skew — see `pharmaverify_corpus::shard`), which
    // breaks byte-identity of this section against pre-v8 runs. The row
    // makes the generation lineage visible in the report itself.
    t.push_row(vec![
        "Link target map".into(),
        "self-excluding integer skew (v2)".into(),
    ]);
    t.push_row(vec![
        "Pharmacy domains".into(),
        build.pharmacies.to_string(),
    ]);
    t.push_row(vec!["Trusted seeds".into(), build.seeds.len().to_string()]);
    t.push_row(vec![
        "TrustRank iterations".into(),
        scores.config.iterations.to_string(),
    ]);
    let reached = scores.trust.iter().filter(|&&s| s > 0.0).count();
    t.push_row(vec!["Nodes with nonzero trust".into(), reached.to_string()]);
    // Web-tier graphs are nonempty by construction (the generator
    // rejects zero domains), so the fallback index is unreachable.
    let top = scores
        .trust
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1).then(b.0.cmp(&a.0)))
        .map_or(0, |(i, _)| i);
    t.push_row(vec![
        "Top-trust domain".into(),
        build
            .graph
            .name(top as pharmaverify_net::NodeId)
            .to_string(),
    ]);
    let seed_mass: f64 = build.seeds.iter().map(|&s| scores.trust[s as usize]).sum();
    t.push_row(vec![
        "Trust mass held by seeds".into(),
        format!("{seed_mass:.6}"),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use pharmaverify_core::pipeline::Executor;
    use pharmaverify_net::SerialDispatch;
    use pharmaverify_obs::VirtualClock;

    fn private_obs() -> Registry {
        Registry::with_clock(Box::new(VirtualClock::new(0)))
    }

    #[test]
    fn scale_section_is_worker_count_independent() {
        let obs = private_obs();
        let build = build_web_tier(3000, &obs);
        let serial = rank_web_tier(&build, &SerialDispatch, &obs);
        let wide = rank_web_tier(&build, &Executor::new(4), &obs);
        let bits = |v: &[f64]| v.iter().map(|s| s.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&serial.trust), bits(&wide.trust));
        assert_eq!(
            scale_section(&build, &serial).to_string(),
            scale_section(&build, &wide).to_string()
        );
    }

    #[test]
    fn build_is_shard_size_invariant_and_section_renders() {
        let obs = private_obs();
        let build = build_web_tier(2500, &obs);
        // Rebuild with a radically different shard size: same frozen graph.
        let mut config = build.config;
        config.shard_size = 97;
        let mut builder = GraphBuilder::new();
        for shard in ShardedWebGenerator::new(config) {
            for r in &shard {
                let node = if r.is_pharmacy {
                    builder.add_pharmacy(&r.domain)
                } else {
                    builder.add_external(&r.domain)
                };
                for (target, weight) in &r.links {
                    builder.add_link(node, target, *weight);
                }
            }
        }
        assert_eq!(builder.freeze(), build.graph);

        let scores = rank_web_tier(&build, &SerialDispatch, &obs);
        let text = scale_section(&build, &scores).to_string();
        for needle in [
            "Scale: web tier (2500 domains",
            "Domains generated",
            "Graph edges (peak, merged)",
            "Link target map",
            "Trusted seeds",
            "Nodes with nonzero trust",
            "Trust mass held by seeds",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
        assert_eq!(build.graph.node_count(), 2500, "closed world: no new nodes");
        assert!(build.generated_links >= build.graph.edge_count());
        let expected_shards = build.config.domains.div_ceil(build.config.shard_size);
        assert_eq!(build.shards, expected_shards);
    }

    #[test]
    fn trust_reaches_beyond_the_seed_set() {
        let obs = private_obs();
        let build = build_web_tier(2000, &obs);
        let scores = rank_web_tier(&build, &SerialDispatch, &obs);
        let reached = scores.trust.iter().filter(|&&s| s > 0.0).count();
        assert!(
            reached > build.seeds.len(),
            "trust must propagate past the seeds ({reached} reached)"
        );
    }
}
