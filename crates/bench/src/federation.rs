//! The federation study: replays a seeded workload through the tiered
//! [`pharmaverify_serve::Federation`] and renders the deterministic
//! tally as a report section.
//!
//! Like the serving study, the section is a **pure suffix** of the
//! report: a run with `--federation N` prints everything a plain run
//! prints, then this table. Every row is a count — per-tier hits and
//! fallthroughs, verdicts by provenance, fast-vs-slow agreement, and
//! the store's restart ledger — so the xtask determinism audit can
//! byte-compare it between `--serve-workers 1` and `--serve-workers 4`
//! runs of the same seed.

use crate::context::{ReproContext, REPRO_SEED};
use pharmaverify_core::report::Table;
use pharmaverify_core::{TextLearnerKind, TrainedVerifier};
use pharmaverify_obs::Registry;
use pharmaverify_serve::{replay_federation, FederationConfig, FederationPolicy, FederationStats};
use std::sync::Arc;

/// Term-subsample size of the served verifier's text model (matches the
/// serving study).
const SERVE_SUBSAMPLE: usize = 1000;

/// Runs the federation study: fits a verifier on Dataset 1, replays
/// `requests` seeded requests through the four-tier federation with
/// `workers` slow-path workers against the Dataset 2 web, and returns
/// the rendered section plus the raw tally. `staleness_budget` and
/// `fast_confidence` override the policy defaults when set.
pub fn federation_study(
    ctx: &ReproContext,
    requests: usize,
    workers: usize,
    staleness_budget: Option<u64>,
    fast_confidence: Option<f64>,
) -> (Table, FederationStats) {
    federation_study_in(
        ctx,
        requests,
        workers,
        staleness_budget,
        fast_confidence,
        pharmaverify_obs::global_arc(),
    )
}

/// [`federation_study`] with an injected registry — tests use a private
/// [`Registry`] so concurrently running replays cannot interleave their
/// counter deltas.
pub fn federation_study_in(
    ctx: &ReproContext,
    requests: usize,
    workers: usize,
    staleness_budget: Option<u64>,
    fast_confidence: Option<f64>,
    obs: Arc<Registry>,
) -> (Table, FederationStats) {
    let _span = obs.span("report/section/federation (tiered replay)");
    let verifier = Arc::new(TrainedVerifier::fit(
        &ctx.corpus1,
        TextLearnerKind::Nbm,
        Default::default(),
        Some(SERVE_SUBSAMPLE),
        REPRO_SEED,
    ));
    let mut config = FederationConfig::new(requests, workers, REPRO_SEED);
    let defaults = FederationPolicy::default();
    config.policy = FederationPolicy {
        staleness_budget_micros: staleness_budget.unwrap_or(defaults.staleness_budget_micros),
        fast_confidence: fast_confidence.unwrap_or(defaults.fast_confidence),
    };
    let stats = replay_federation(
        verifier,
        &ctx.snapshot1,
        &ctx.snapshot2,
        &config,
        Arc::clone(&obs),
    );

    // The title deliberately omits the worker count and store path: the
    // section must be byte-identical at any worker count.
    let mut t = Table::new(
        &format!("Federation: tiered verdict replay ({requests} requests, seed {REPRO_SEED})"),
        &["Metric", "Count"],
    );
    for (label, value) in stats.lines() {
        t.push_row(vec![label, value.to_string()]);
    }
    (t, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Scale;
    use pharmaverify_obs::VirtualClock;

    fn private_obs() -> Arc<Registry> {
        Arc::new(Registry::with_clock(Box::new(VirtualClock::new(0))))
    }

    #[test]
    fn federation_section_is_worker_count_independent() {
        let ctx = ReproContext::new(Scale::Small);
        let (table_1, stats_1) = federation_study_in(&ctx, 48, 1, None, None, private_obs());
        let (table_4, stats_4) = federation_study_in(&ctx, 48, 4, None, None, private_obs());
        assert_eq!(stats_1, stats_4, "worker count leaked into the tally");
        assert_eq!(table_1.to_string(), table_4.to_string());
    }

    #[test]
    fn federation_section_renders_every_stat_line() {
        let ctx = ReproContext::new(Scale::Small);
        let (table, stats) = federation_study_in(&ctx, 32, 2, None, None, private_obs());
        let text = table.to_string();
        assert!(text.contains("Federation: tiered verdict replay (32 requests"));
        for (label, _) in stats.lines() {
            assert!(text.contains(&label), "missing line {label:?}:\n{text}");
        }
        assert_eq!(stats.requests, 32);
    }

    #[test]
    fn majority_of_requests_answered_by_cheaper_tiers() {
        let ctx = ReproContext::new(Scale::Small);
        let (_, stats) = federation_study_in(&ctx, 64, 2, None, None, private_obs());
        // The acceptance criterion: the majority of requests are
        // answered by a tier cheaper than the graph-spliced slow path.
        assert!(
            stats.answered_cheap() * 2 > stats.requests,
            "cheap tiers answered {} of {} requests: {stats:?}",
            stats.answered_cheap(),
            stats.requests
        );
        // Every tier actually participated, and every verdict carried a
        // provenance tag (the four source tallies cover all verdicts).
        assert!(stats.via_cache > 0, "cache tier never answered");
        assert!(stats.via_slow > 0, "slow path never ran");
        assert_eq!(
            stats.via_cache + stats.via_store + stats.via_fast + stats.via_slow,
            stats.requests
                - stats.errors_empty_site
                - stats.errors_unreachable
                - stats.errors_other,
        );
    }

    #[test]
    fn store_restart_persists_and_reloads_records() {
        let ctx = ReproContext::new(Scale::Small);
        let (_, stats) = federation_study_in(&ctx, 64, 2, None, None, private_obs());
        assert!(stats.store_persisted > 0, "restart persisted nothing");
        assert_eq!(stats.store_persisted, stats.store_reloaded);
        assert!(stats.store_records >= stats.store_reloaded);
    }

    #[test]
    fn policy_knobs_change_tier_traffic() {
        let ctx = ReproContext::new(Scale::Small);
        // A zero staleness budget stales every store record instantly…
        let (_, strict) = federation_study_in(&ctx, 48, 2, Some(1), Some(1.01), private_obs());
        assert_eq!(strict.store_hits, 0, "budget 1µs must stale all records");
        assert_eq!(
            strict.fast_hits, 0,
            "confidence > 1 must reject all fast verdicts"
        );
        // …while the defaults serve from both tiers.
        let (_, default) = federation_study_in(&ctx, 48, 2, None, None, private_obs());
        assert!(default.fast_hits + default.store_hits > 0);
    }
}
