//! Shared experiment state: the generated snapshots and their extracted
//! corpora, built once and reused by every table.

use pharmaverify_core::features::{extract_corpus, ExtractedCorpus};
use pharmaverify_core::CvConfig;
use pharmaverify_corpus::{CorpusConfig, Snapshot, SyntheticWeb};
use pharmaverify_crawl::CrawlConfig;

/// Corpus scale for the reproduction run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Tiny corpus for smoke-testing the harness (~60 sites).
    Small,
    /// Quarter-scale corpus (~360 sites).
    Medium,
    /// The paper's Table 1 class counts (1459 / 1442 sites).
    Paper,
}

impl Scale {
    /// Parses `small` / `medium` / `paper` (case-insensitive).
    pub fn parse(s: &str) -> Option<Scale> {
        match s.to_ascii_lowercase().as_str() {
            "small" => Some(Scale::Small),
            "medium" => Some(Scale::Medium),
            "paper" => Some(Scale::Paper),
            _ => None,
        }
    }

    /// Reads `PHARMAVERIFY_SCALE` from the environment, defaulting to
    /// `Paper`.
    pub fn from_env() -> Scale {
        std::env::var("PHARMAVERIFY_SCALE")
            .ok()
            .and_then(|s| Scale::parse(&s))
            .unwrap_or(Scale::Paper)
    }

    /// The corpus configuration for this scale.
    pub fn corpus_config(self) -> CorpusConfig {
        match self {
            Scale::Small => CorpusConfig::small(),
            Scale::Medium => CorpusConfig::medium(),
            Scale::Paper => CorpusConfig::paper(),
        }
    }
}

/// Everything the table generators need, built once.
pub struct ReproContext {
    /// The scale this context was built at.
    pub scale: Scale,
    /// Dataset 1 snapshot.
    pub snapshot1: Snapshot,
    /// Dataset 2 snapshot (six months later).
    pub snapshot2: Snapshot,
    /// Extracted corpus of Dataset 1.
    pub corpus1: ExtractedCorpus,
    /// Extracted corpus of Dataset 2.
    pub corpus2: ExtractedCorpus,
    /// Cross-validation configuration shared by all experiments.
    pub cv: CvConfig,
}

/// The master seed of the reproduction. Changing it regenerates the whole
/// experiment under a different random universe.
pub const REPRO_SEED: u64 = 20180326; // EDBT 2018 opened March 26.

impl ReproContext {
    /// Generates the corpus and extracts features at the given scale.
    pub fn new(scale: Scale) -> Self {
        let web = SyntheticWeb::generate(&scale.corpus_config(), REPRO_SEED);
        let crawl = CrawlConfig::default();
        // lint:allow(no-panic): experiment harness over generator-produced
        // snapshots, whose seed URLs are well-formed by construction; a
        // failure here is a generator bug and should abort the run loudly.
        #[allow(clippy::expect_used)]
        let corpus1 = extract_corpus(web.snapshot(), &crawl).expect("synthetic snapshot extracts");
        #[allow(clippy::expect_used)]
        let corpus2 = extract_corpus(web.snapshot2(), &crawl).expect("synthetic snapshot extracts");
        ReproContext {
            scale,
            snapshot1: web.snapshot().clone(),
            snapshot2: web.snapshot2().clone(),
            corpus1,
            corpus2,
            cv: CvConfig {
                k: 3,
                seed: REPRO_SEED,
            },
        }
    }

    /// The paper's term-subsample axis: 100, 250, 1000, 2000, All.
    pub fn subsample_sizes() -> [(Option<usize>, &'static str); 5] {
        [
            (Some(100), "100"),
            (Some(250), "250"),
            (Some(1000), "1000"),
            (Some(2000), "2000"),
            (None, "All"),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parses_case_insensitively() {
        assert_eq!(Scale::parse("small"), Some(Scale::Small));
        assert_eq!(Scale::parse("MEDIUM"), Some(Scale::Medium));
        assert_eq!(Scale::parse("Paper"), Some(Scale::Paper));
        assert_eq!(Scale::parse("huge"), None);
    }

    #[test]
    fn scale_maps_to_corpus_configs() {
        assert_eq!(Scale::Paper.corpus_config().n_legitimate, 167);
        assert_eq!(Scale::Small.corpus_config().n_legitimate, 12);
    }

    #[test]
    fn subsample_axis_matches_paper() {
        let sizes = ReproContext::subsample_sizes();
        assert_eq!(sizes.len(), 5);
        assert_eq!(sizes[0].0, Some(100));
        assert_eq!(sizes[4].0, None);
        assert_eq!(sizes[4].1, "All");
    }

    #[test]
    fn small_context_builds() {
        let ctx = ReproContext::new(Scale::Small);
        assert_eq!(ctx.corpus1.len(), 60);
        assert_eq!(ctx.corpus2.len(), 60);
        assert_eq!(ctx.cv.k, 3);
    }
}
