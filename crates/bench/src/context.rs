//! Shared experiment state: the generated snapshots, their extracted
//! corpora, and the artifact store every table draws from — built once
//! and reused by every table.

use pharmaverify_core::features::{extract_corpus, ExtractedCorpus};
use pharmaverify_core::pipeline::{corpus_fingerprint, ArtifactStore, CacheCounters, Pipeline};
use pharmaverify_core::system::SystemError;
use pharmaverify_core::CvConfig;
use pharmaverify_corpus::{CorpusConfig, Snapshot, SyntheticWeb};
use pharmaverify_crawl::CrawlConfig;
use std::fmt;

/// Corpus scale for the reproduction run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Tiny corpus for smoke-testing the harness (~60 sites).
    Small,
    /// Quarter-scale corpus (~360 sites).
    Medium,
    /// The paper's Table 1 class counts (1459 / 1442 sites).
    Paper,
    /// The production tier: the small paper-pipeline corpus **plus** the
    /// sharded web-scale link graph (10⁵–10⁶ synthetic domains streamed
    /// through the CSR builder). The table output is a pure prefix-match
    /// of a `Small` run; the scale report rides as a suffix section.
    Web,
}

/// `PHARMAVERIFY_SCALE` held a value [`Scale::parse`] rejects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScaleError {
    /// The rejected value.
    pub value: String,
}

impl fmt::Display for ScaleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown PHARMAVERIFY_SCALE value {:?}; accepted values: small, medium, paper, web",
            self.value
        )
    }
}

impl std::error::Error for ScaleError {}

impl Scale {
    /// Parses `small` / `medium` / `paper` / `web` (case-insensitive).
    pub fn parse(s: &str) -> Option<Scale> {
        match s.to_ascii_lowercase().as_str() {
            "small" => Some(Scale::Small),
            "medium" => Some(Scale::Medium),
            "paper" => Some(Scale::Paper),
            "web" => Some(Scale::Web),
            _ => None,
        }
    }

    /// Reads `PHARMAVERIFY_SCALE` from the environment, defaulting to
    /// `Paper` when unset.
    ///
    /// # Errors
    /// Rejects unknown values instead of silently running the most
    /// expensive scale on a typo.
    pub fn from_env() -> Result<Scale, ScaleError> {
        Scale::from_env_default(Scale::Paper)
    }

    /// [`Scale::from_env`] with a caller-chosen default for the unset
    /// case (benches default to `Medium`).
    ///
    /// # Errors
    /// Rejects unknown values, like [`Scale::from_env`].
    pub fn from_env_default(default: Scale) -> Result<Scale, ScaleError> {
        Scale::from_env_value(std::env::var("PHARMAVERIFY_SCALE").ok().as_deref(), default)
    }

    /// The pure core of [`Scale::from_env`]: `None` (unset) maps to the
    /// default, a set value must parse.
    fn from_env_value(value: Option<&str>, default: Scale) -> Result<Scale, ScaleError> {
        match value {
            None => Ok(default),
            Some(raw) => Scale::parse(raw).ok_or_else(|| ScaleError {
                value: raw.to_string(),
            }),
        }
    }

    /// The corpus configuration for this scale. The web tier runs the
    /// paper pipeline on the small corpus — its extra volume lives in the
    /// sharded link graph, not in crawled page content — so a web-tier
    /// report is a pure prefix-match of a small run.
    pub fn corpus_config(self) -> CorpusConfig {
        match self {
            Scale::Small | Scale::Web => CorpusConfig::small(),
            Scale::Medium => CorpusConfig::medium(),
            Scale::Paper => CorpusConfig::paper(),
        }
    }
}

/// Everything the table generators need, built once.
pub struct ReproContext {
    /// The scale this context was built at.
    pub scale: Scale,
    /// Dataset 1 snapshot.
    pub snapshot1: Snapshot,
    /// Dataset 2 snapshot (six months later).
    pub snapshot2: Snapshot,
    /// Extracted corpus of Dataset 1.
    pub corpus1: ExtractedCorpus,
    /// Extracted corpus of Dataset 2.
    pub corpus2: ExtractedCorpus,
    /// Cross-validation configuration shared by all experiments.
    pub cv: CvConfig,
    /// The shared artifact store every table draws from.
    pub store: ArtifactStore,
    fp1: u64,
    fp2: u64,
}

/// The master seed of the reproduction. Changing it regenerates the whole
/// experiment under a different random universe.
pub const REPRO_SEED: u64 = 20180326; // EDBT 2018 opened March 26.

impl ReproContext {
    /// Generates the corpus and extracts features at the given scale.
    ///
    /// # Errors
    /// Returns [`SystemError::Extract`] if either snapshot fails corpus
    /// extraction (a generator bug — the synthetic seed URLs are
    /// well-formed by construction).
    pub fn try_new(scale: Scale) -> Result<Self, SystemError> {
        let web = SyntheticWeb::generate(&scale.corpus_config(), REPRO_SEED);
        let crawl = CrawlConfig::default();
        let corpus1 = extract_corpus(web.snapshot(), &crawl)?;
        let corpus2 = extract_corpus(web.snapshot2(), &crawl)?;
        let fp1 = corpus_fingerprint(&corpus1);
        let fp2 = corpus_fingerprint(&corpus2);
        Ok(ReproContext {
            scale,
            snapshot1: web.snapshot().clone(),
            snapshot2: web.snapshot2().clone(),
            corpus1,
            corpus2,
            cv: CvConfig {
                k: 3,
                seed: REPRO_SEED,
            },
            store: ArtifactStore::new(),
            fp1,
            fp2,
        })
    }

    /// [`ReproContext::try_new`], panicking on extraction failure — for
    /// tests and examples where a broken generator should abort loudly.
    // lint:allow(no-panic): test/example convenience over
    // generator-produced snapshots, whose seed URLs are well-formed by
    // construction; a failure here is a generator bug.
    #[allow(clippy::expect_used)]
    pub fn new(scale: Scale) -> Self {
        ReproContext::try_new(scale).expect("synthetic snapshot extracts")
    }

    /// The Dataset 1 pipeline over the shared store.
    pub fn pipe1(&self) -> Pipeline<'_> {
        Pipeline::with_fingerprint(&self.store, &self.corpus1, self.fp1)
    }

    /// The Dataset 2 pipeline over the shared store.
    pub fn pipe2(&self) -> Pipeline<'_> {
        Pipeline::with_fingerprint(&self.store, &self.corpus2, self.fp2)
    }

    /// Per-stage cache hit/miss counters of the shared store.
    pub fn cache_counters(&self) -> Vec<CacheCounters> {
        self.store.counters()
    }

    /// The paper's term-subsample axis: 100, 250, 1000, 2000, All.
    pub fn subsample_sizes() -> [(Option<usize>, &'static str); 5] {
        [
            (Some(100), "100"),
            (Some(250), "250"),
            (Some(1000), "1000"),
            (Some(2000), "2000"),
            (None, "All"),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parses_case_insensitively() {
        assert_eq!(Scale::parse("small"), Some(Scale::Small));
        assert_eq!(Scale::parse("MEDIUM"), Some(Scale::Medium));
        assert_eq!(Scale::parse("Paper"), Some(Scale::Paper));
        assert_eq!(Scale::parse("huge"), None);
    }

    #[test]
    fn env_scale_rejects_unknown_values() {
        assert_eq!(Scale::from_env_value(None, Scale::Paper), Ok(Scale::Paper));
        assert_eq!(
            Scale::from_env_value(Some("medium"), Scale::Paper),
            Ok(Scale::Medium)
        );
        let err = Scale::from_env_value(Some("papre"), Scale::Paper)
            .expect_err("typo must not fall back");
        let message = err.to_string();
        assert!(message.contains("papre"), "{message}");
        assert!(message.contains("small, medium, paper"), "{message}");
    }

    #[test]
    fn scale_maps_to_corpus_configs() {
        assert_eq!(Scale::Paper.corpus_config().n_legitimate, 167);
        assert_eq!(Scale::Small.corpus_config().n_legitimate, 12);
    }

    #[test]
    fn subsample_axis_matches_paper() {
        let sizes = ReproContext::subsample_sizes();
        assert_eq!(sizes.len(), 5);
        assert_eq!(sizes[0].0, Some(100));
        assert_eq!(sizes[4].0, None);
        assert_eq!(sizes[4].1, "All");
    }

    #[test]
    fn small_context_builds() {
        let ctx = ReproContext::new(Scale::Small);
        assert_eq!(ctx.corpus1.len(), 60);
        assert_eq!(ctx.corpus2.len(), 60);
        assert_eq!(ctx.cv.k, 3);
        assert!(ctx.store.is_empty());
        assert_ne!(
            ctx.pipe1().fingerprint(),
            ctx.pipe2().fingerprint(),
            "the two datasets must occupy distinct cache key spaces"
        );
    }
}
