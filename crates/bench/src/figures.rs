//! Figure generators.
//!
//! Figure 1 (storefront screenshots) is not reproducible as data; the
//! quickstart example prints a front page of each class instead. Figure 2
//! is a process diagram, implemented end to end by `pharmaverify-ngg`.
//! Figure 3 — the TrustRank illustration — is reproduced here as the two
//! series of node trust values (initial seed state, converged state).

use pharmaverify_core::report::Table;
use pharmaverify_net::trustrank_demo;

/// Figure 3: trust values before and after TrustRank on the good/bad
/// demo network.
pub fn figure3() -> Table {
    let (graph, seeds, initial, converged) = trustrank_demo();
    let mut t = Table::new(
        "Figure 3: TrustRank illustration - node trust before/after propagation",
        &["node", "kind", "seed", "initial", "converged"],
    );
    for id in graph.nodes() {
        let idx = id as usize;
        // Nodes 0–3 are the "good" (white) cluster, 4–6 the "bad" (black)
        // chain, by construction of the demo.
        let kind = if idx < 4 { "good" } else { "bad" };
        t.push_row(vec![
            graph.name(id).to_string(),
            kind.to_string(),
            if seeds.contains(&id) { "yes" } else { "" }.to_string(),
            format!("{:.3}", initial[idx]),
            format!("{:.3}", converged[idx]),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure3_has_seven_nodes() {
        let t = figure3();
        assert_eq!(t.rows.len(), 7);
        // Seeds marked, good nodes end with trust above the bad chain.
        assert_eq!(t.rows.iter().filter(|r| r[2] == "yes").count(), 2);
    }
}
