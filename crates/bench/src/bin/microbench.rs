//! Micro-benchmarks of the graph substrate: sharded corpus generation,
//! CSR freeze, and the three power-iteration kernels — each on both the
//! frozen CSR representation and the legacy adjacency [`WebGraph`].
//!
//! ```text
//! microbench [--domains N] [--repeat R] [--out PATH]
//! ```
//!
//! Every benchmark runs `R` times (default 3) and reports the *minimum*
//! wall clock — the least-noisy estimate on a shared machine. Results go
//! to stderr as they complete; `--out PATH` additionally writes one JSON
//! document (schema `pharmaverify-microbench-v1`) with per-bench
//! wall-clock seconds and items-per-second throughput. `cargo xtask
//! bench` drives this binary and captures `BENCH_10.json` at the
//! workspace root.
//!
//! The workload is the web-tier generator at `--domains N` (default
//! 50000) under the reproduction seed, so the numbers describe the same
//! graph shape the `--scale web` report ranks.

use pharmaverify_core::{extract_corpus, TextLearnerKind, TrainedVerifier};
use pharmaverify_corpus::{
    CorpusConfig, DomainRecord, ShardedWebGenerator, SyntheticWeb, WebScaleConfig,
};
use pharmaverify_crawl::CrawlConfig;
use pharmaverify_net::{
    anti_trust_rank, pagerank, trust_rank, CsrGraph, GraphBuilder, IncrementalConfig, NodeId,
    SpliceOverlay, TrustRankConfig, TrustTrajectory, WebGraph,
};
use std::time::Instant;

/// The reproduction's master seed (`bench::context::REPRO_SEED`).
const SEED: u64 = 20180326;

/// One benchmark's outcome.
struct BenchResult {
    /// Stable bench name, `area/what` style.
    name: &'static str,
    /// Work items processed per run (see `unit`).
    items: usize,
    /// What `items` counts: `domains`, `edges`, or `edge-traversals`.
    unit: &'static str,
    /// Minimum wall clock over the repeat runs, in seconds.
    wall_secs: f64,
}

impl BenchResult {
    fn throughput(&self) -> f64 {
        self.items as f64 / self.wall_secs.max(f64::EPSILON)
    }
}

/// Times `f` over `repeat` runs and keeps the fastest.
fn bench<T>(
    name: &'static str,
    items: usize,
    unit: &'static str,
    repeat: usize,
    mut f: impl FnMut() -> T,
) -> BenchResult {
    let mut best = f64::INFINITY;
    for _ in 0..repeat {
        let started = Instant::now();
        let result = f();
        best = best.min(started.elapsed().as_secs_f64());
        drop(result);
    }
    let out = BenchResult {
        name,
        items,
        unit,
        wall_secs: best,
    };
    eprintln!(
        "[microbench] {:<24} {:>9.4}s  {:>14.0} {}/s",
        out.name,
        out.wall_secs,
        out.throughput(),
        out.unit
    );
    out
}

/// Generates the full web-tier record stream once, for the graph-build
/// benches to consume without re-timing generation.
fn generate_records(config: WebScaleConfig) -> Vec<DomainRecord> {
    ShardedWebGenerator::new(config).flatten().collect()
}

/// Builds the mutable CSR builder from pre-generated records.
fn fill_builder(records: &[DomainRecord]) -> GraphBuilder {
    let mut builder = GraphBuilder::new();
    for record in records {
        let node = if record.is_pharmacy {
            builder.add_pharmacy(&record.domain)
        } else {
            builder.add_external(&record.domain)
        };
        for (target, weight) in &record.links {
            builder.add_link(node, target, *weight);
        }
    }
    builder
}

/// Builds the legacy adjacency graph from the same records.
fn fill_legacy(records: &[DomainRecord]) -> WebGraph {
    let mut graph = WebGraph::new();
    for record in records {
        let node = if record.is_pharmacy {
            graph.add_pharmacy(&record.domain)
        } else {
            graph.add_external(&record.domain)
        };
        for (target, weight) in &record.links {
            graph.add_link(node, target, *weight);
        }
    }
    graph
}

/// Resolves the generator's trusted-seed prefix against the frozen graph.
fn resolve_seeds(config: WebScaleConfig, graph: &CsrGraph) -> Vec<NodeId> {
    ShardedWebGenerator::new(config)
        .trusted_domains()
        .iter()
        .filter_map(|d| graph.node(d))
        .collect()
}

/// The value following `flag`, or a uniform "missing value" error on
/// exit code 2 — same convention as the `repro` binary.
fn require_value(args: &mut impl Iterator<Item = String>, flag: &str) -> String {
    args.next().unwrap_or_else(|| {
        eprintln!("missing value for '{flag}'");
        std::process::exit(2);
    })
}

fn render_json(domains: usize, repeat: usize, results: &[BenchResult]) -> String {
    let benches: Vec<String> = results
        .iter()
        .map(|r| {
            format!(
                "    {{\"name\": \"{}\", \"items\": {}, \"unit\": \"{}\", \
                 \"wall_secs\": {:.6}, \"throughput_per_sec\": {:.1}}}",
                r.name,
                r.items,
                r.unit,
                r.wall_secs,
                r.throughput()
            )
        })
        .collect();
    format!(
        "{{\n  \"schema\": \"pharmaverify-microbench-v1\",\n  \"seed\": {SEED},\n  \
         \"domains\": {domains},\n  \"repeat\": {repeat},\n  \"benches\": [\n{}\n  ]\n}}\n",
        benches.join(",\n")
    )
}

fn main() {
    let mut domains = 50_000usize;
    let mut repeat = 3usize;
    let mut out_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--domains" => {
                let value = require_value(&mut args, "--domains");
                match value.parse::<usize>() {
                    Ok(n) if n >= 1 => domains = n,
                    _ => {
                        eprintln!("--domains expects a positive domain count, got '{value}'");
                        std::process::exit(2);
                    }
                }
            }
            "--repeat" => {
                let value = require_value(&mut args, "--repeat");
                match value.parse::<usize>() {
                    Ok(n) if n >= 1 => repeat = n,
                    _ => {
                        eprintln!("--repeat expects a positive run count, got '{value}'");
                        std::process::exit(2);
                    }
                }
            }
            "--out" => {
                out_path = Some(require_value(&mut args, "--out"));
            }
            "--help" | "-h" => {
                println!("microbench [--domains N] [--repeat R] [--out PATH]");
                return;
            }
            other => {
                eprintln!("unknown argument '{other}'");
                std::process::exit(2);
            }
        }
    }

    let config = WebScaleConfig::new(domains, SEED);
    eprintln!("[microbench] {domains} domains, seed {SEED}, best of {repeat} run(s)");
    let mut results = Vec::new();

    results.push(bench(
        "corpus/shard_generate",
        domains,
        "domains",
        repeat,
        || generate_records(config),
    ));

    let records = generate_records(config);
    let raw_edges = fill_builder(&records).raw_edge_count();
    results.push(bench("csr/freeze", raw_edges, "edges", repeat, || {
        fill_builder(&records).freeze()
    }));
    results.push(bench("legacy/build", raw_edges, "edges", repeat, || {
        fill_legacy(&records)
    }));

    let graph = fill_builder(&records).freeze();
    let legacy = fill_legacy(&records);
    let seeds = resolve_seeds(config, &graph);
    let rank_config = TrustRankConfig::default();
    let traversals = graph.edge_count() * rank_config.iterations;
    eprintln!(
        "[microbench] graph: {} nodes, {} merged edges, {} seeds, {} iterations",
        graph.node_count(),
        graph.edge_count(),
        seeds.len(),
        rank_config.iterations
    );

    results.push(bench(
        "csr/trust_rank",
        traversals,
        "edge-traversals",
        repeat,
        || graph.trust_rank(&seeds, &rank_config),
    ));
    results.push(bench(
        "csr/pagerank",
        traversals,
        "edge-traversals",
        repeat,
        || graph.pagerank(&rank_config),
    ));
    results.push(bench(
        "csr/anti_trust_rank",
        traversals,
        "edge-traversals",
        repeat,
        || graph.anti_trust_rank(&seeds, &rank_config),
    ));
    results.push(bench(
        "legacy/trust_rank",
        traversals,
        "edge-traversals",
        repeat,
        || trust_rank(&legacy, &seeds, &rank_config),
    ));
    results.push(bench(
        "legacy/pagerank",
        traversals,
        "edge-traversals",
        repeat,
        || pagerank(&legacy, &rank_config),
    ));
    results.push(bench(
        "legacy/anti_trust_rank",
        traversals,
        "edge-traversals",
        repeat,
        || anti_trust_rank(&legacy, &seeds, &rank_config),
    ));

    // Online-serving pair: re-rank after splicing one pharmacy over the
    // frozen graph, full power iteration vs. the incremental replay of
    // a recorded trajectory (DESIGN.md §12). Items count splices, so
    // the throughputs compare directly as per-splice serving cost.
    let trajectory = TrustTrajectory::compute(&graph, &seeds, &rank_config);
    let inc_config = IncrementalConfig {
        tolerance: 1e-7,
        max_frontier: graph.node_count() / 2,
    };
    // A preexisting peripheral domain gaining a few links — the
    // small-churn shape the incremental path is built for. (Splicing a
    // trusted-seed hub instead would legitimately perturb most of the
    // graph and trip the frontier fallback.)
    let splice_domain = pharmaverify_corpus::domain_name(domains - 3);
    let splice_links: Vec<(String, f64)> = [1usize, 2, 3]
        .iter()
        .map(|&i| (pharmaverify_corpus::domain_name(i), 1.0))
        .collect();
    results.push(bench("overlay/full_rerank", 1, "splices", repeat, || {
        let mut overlay = SpliceOverlay::new(&graph);
        overlay.splice_pharmacy(&splice_domain, &splice_links);
        overlay.trust_rank(&seeds, &rank_config)
    }));
    results.push(bench(
        "overlay/incremental_rerank",
        1,
        "splices",
        repeat,
        || {
            let mut overlay = SpliceOverlay::new(&graph);
            overlay.splice_pharmacy(&splice_domain, &splice_links);
            overlay.trust_rank_incremental(&trajectory, &inc_config)
        },
    ));

    // Federation pair: per-request cost of the two verdict-producing
    // tiers on the same small synthetic web — the text-only fast path
    // vs the full graph-spliced slow path (DESIGN.md §14). Items count
    // routed requests, so the throughputs compare directly as
    // per-request serving cost.
    let web = SyntheticWeb::generate(&CorpusConfig::small(), SEED);
    // lint:allow(no-panic): generator-produced snapshots extract by
    // construction; a failure here is a generator bug.
    #[allow(clippy::expect_used)]
    let small_corpus =
        extract_corpus(web.snapshot(), &CrawlConfig::default()).expect("synthetic corpus extracts");
    let verifier = TrainedVerifier::fit(
        &small_corpus,
        TextLearnerKind::Nbm,
        CrawlConfig::default(),
        Some(250),
        SEED,
    );
    let snap2 = web.snapshot2();
    let requests = snap2.sites.len();
    results.push(bench(
        "federation/route/fast",
        requests,
        "requests",
        repeat,
        || {
            for site in &snap2.sites {
                let _ = verifier.verify_text_only(&snap2.web, &site.seed_url);
            }
        },
    ));
    results.push(bench(
        "federation/route/slow",
        requests,
        "requests",
        repeat,
        || {
            for site in &snap2.sites {
                let _ = verifier.verify(&snap2.web, &site.seed_url);
            }
        },
    ));

    let json = render_json(domains, repeat, &results);
    match out_path {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, &json) {
                eprintln!("[microbench] failed to write '{path}': {e}");
                std::process::exit(1);
            }
            eprintln!("[microbench] results written to {path}");
        }
        None => print!("{json}"),
    }
}
