//! Reproduces the paper's tables and figures.
//!
//! ```text
//! repro [--scale small|medium|paper|web] [--table N]... [--figure 3] [--jobs N]
//!       [--fault-rate F] [--trace PATH] [--serve-workload N] [--serve-workers W]
//!       [--online-waves N] [--web-domains N]
//!       [--attack link-farm|cloak|mimicry] [--attack-strength S]
//!       [--federation N] [--staleness-budget M] [--fast-confidence F]
//! ```
//!
//! With no selection, every table and figure is printed. Scale defaults
//! to the `PHARMAVERIFY_SCALE` environment variable, then to `paper`;
//! worker count defaults to `PHARMAVERIFY_JOBS`, then to the available
//! cores. `--fault-rate F` (0 < F ≤ 1) appends the fault-injection
//! robustness study after the regular output; the rest of the report is
//! byte-identical to a run without the flag. `--trace PATH` (or the
//! `PHARMAVERIFY_TRACE` environment variable) writes the full
//! metrics-and-spans trace as canonical JSON; its deterministic view is
//! byte-identical across worker counts at the same seed.
//! `--serve-workload N` replays N seeded requests through the concurrent
//! verification service (`--serve-workers W` sizes its worker pool,
//! default 2) and appends the "Serving" section after the regular
//! output — a pure suffix whose counts are byte-identical at any worker
//! count; throughput and latency quantiles go to stderr.
//! `--online-waves N` replays N waves of a mix-shifting workload through
//! the service with drift monitoring, retraining, and mid-replay model
//! hot-swap, and appends the "Online" section — a pure suffix,
//! byte-identical at any `--serve-workers` count. Tables go to
//! stdout; progress, span summaries, and artifact cache statistics go to
//! stderr, so redirected output stays clean.
//!
//! `--attack <kind>` appends the adversarial study: the named attack
//! (link-farm, cloak, or mimicry) mutates the Dataset 1 snapshot at
//! strengths 0, S/2, and S (`--attack-strength S`, default 0.6), and
//! the "Adversarial" section reports OPC accuracy/AUC and OPR pairwise
//! orderedness with the spam-mass defense off vs on — a pure suffix,
//! byte-identical at any worker count.
//!
//! `--federation N` replays N seeded requests through the tiered verdict
//! federation (response cache → persisted store → text-only fast path →
//! graph-spliced slow path) and appends the "Federation" section — the
//! final pure suffix, byte-identical at any `--serve-workers` count.
//! `--staleness-budget M` (virtual microseconds, 0 = never stale) and
//! `--fast-confidence F` (in [0, 1]) override the routing policy's
//! defaults; wall time goes to stderr.
//!
//! `--scale web` runs the paper pipeline on the small corpus, then
//! streams a sharded synthetic web (`--web-domains N`, default 100000)
//! through the CSR graph builder, ranks it with the block TrustRank
//! kernel, and appends the "Scale" section — another pure suffix,
//! byte-identical at any worker count; domains/sec and edges/sec per
//! power iteration go to stderr.

use pharmaverify_bench::{
    adversarial_study, build_web_tier, federation_study, online_study, rank_web_tier,
    render_report_with, scale_section, serving_study, ReproContext, Scale, Selection,
};
use pharmaverify_core::pipeline::Executor;
use pharmaverify_corpus::AttackKind;
use std::time::Instant;

/// Environment variable naming a trace output file (`--trace` wins).
const TRACE_ENV: &str = "PHARMAVERIFY_TRACE";

/// The value following `flag`, or a uniform "missing value" error on
/// exit code 2 when the command line ends at the flag.
fn require_value(args: &mut impl Iterator<Item = String>, flag: &str) -> String {
    args.next().unwrap_or_else(|| {
        eprintln!("missing value for '{flag}'");
        std::process::exit(2);
    })
}

fn main() {
    let mut scale = Scale::from_env().unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let mut exec = Executor::from_env().unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let mut sel = Selection::everything();
    let mut fault_rate = 0.0_f64;
    let mut serve_workload: Option<usize> = None;
    let mut online_waves: Option<usize> = None;
    let mut serve_workers = 2usize;
    let mut web_domains = 100_000usize;
    let mut attack: Option<AttackKind> = None;
    let mut attack_strength = 0.6_f64;
    let mut federation: Option<usize> = None;
    let mut staleness_budget: Option<u64> = None;
    let mut fast_confidence: Option<f64> = None;
    let mut trace_path = std::env::var(TRACE_ENV).ok().filter(|p| !p.is_empty());
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let value = require_value(&mut args, "--scale");
                scale = Scale::parse(&value).unwrap_or_else(|| {
                    eprintln!("unknown scale '{value}' (small|medium|paper|web)");
                    std::process::exit(2);
                });
            }
            "--table" => {
                let value = require_value(&mut args, "--table");
                match value.parse() {
                    Ok(n) if (1..=17).contains(&n) => {
                        sel.add_table(n);
                    }
                    _ => {
                        eprintln!("--table expects a number in 1..=17, got '{value}'");
                        std::process::exit(2);
                    }
                }
            }
            "--figure" => {
                let value = require_value(&mut args, "--figure");
                match value.parse() {
                    Ok(3u32) => {
                        sel.add_figure(3);
                    }
                    _ => {
                        eprintln!("--figure expects 3 (the only data figure), got '{value}'");
                        std::process::exit(2);
                    }
                }
            }
            "--jobs" => {
                let value = require_value(&mut args, "--jobs");
                match value.parse::<usize>() {
                    Ok(n) if n >= 1 => {
                        exec = Executor::new(n);
                    }
                    _ => {
                        eprintln!("--jobs expects a positive worker count, got '{value}'");
                        std::process::exit(2);
                    }
                }
            }
            "--fault-rate" => {
                let value = require_value(&mut args, "--fault-rate");
                match value.parse::<f64>() {
                    Ok(f) if (0.0..=1.0).contains(&f) => {
                        fault_rate = f;
                    }
                    _ => {
                        eprintln!("--fault-rate expects a number in [0, 1], got '{value}'");
                        std::process::exit(2);
                    }
                }
            }
            "--serve-workload" => {
                let value = require_value(&mut args, "--serve-workload");
                match value.parse::<usize>() {
                    Ok(n) if n >= 1 => {
                        serve_workload = Some(n);
                    }
                    _ => {
                        eprintln!(
                            "--serve-workload expects a positive request count, got '{value}'"
                        );
                        std::process::exit(2);
                    }
                }
            }
            "--online-waves" => {
                let value = require_value(&mut args, "--online-waves");
                match value.parse::<usize>() {
                    Ok(n) if n >= 1 => {
                        online_waves = Some(n);
                    }
                    _ => {
                        eprintln!("--online-waves expects a positive wave count, got '{value}'");
                        std::process::exit(2);
                    }
                }
            }
            "--serve-workers" => {
                let value = require_value(&mut args, "--serve-workers");
                match value.parse::<usize>() {
                    Ok(n) if n >= 1 => {
                        serve_workers = n;
                    }
                    _ => {
                        eprintln!("--serve-workers expects a positive worker count, got '{value}'");
                        std::process::exit(2);
                    }
                }
            }
            "--web-domains" => {
                let value = require_value(&mut args, "--web-domains");
                match value.parse::<usize>() {
                    Ok(n) if n >= 1 => {
                        web_domains = n;
                    }
                    _ => {
                        eprintln!("--web-domains expects a positive domain count, got '{value}'");
                        std::process::exit(2);
                    }
                }
            }
            "--attack" => {
                let value = require_value(&mut args, "--attack");
                attack = Some(AttackKind::parse(&value).unwrap_or_else(|| {
                    eprintln!("unknown attack '{value}' (link-farm|cloak|mimicry)");
                    std::process::exit(2);
                }));
            }
            "--attack-strength" => {
                let value = require_value(&mut args, "--attack-strength");
                match value.parse::<f64>() {
                    Ok(s) if (0.0..=1.0).contains(&s) => {
                        attack_strength = s;
                    }
                    _ => {
                        eprintln!("--attack-strength expects a number in [0, 1], got '{value}'");
                        std::process::exit(2);
                    }
                }
            }
            "--federation" => {
                let value = require_value(&mut args, "--federation");
                match value.parse::<usize>() {
                    Ok(n) if n >= 1 => {
                        federation = Some(n);
                    }
                    _ => {
                        eprintln!("--federation expects a positive request count, got '{value}'");
                        std::process::exit(2);
                    }
                }
            }
            "--staleness-budget" => {
                let value = require_value(&mut args, "--staleness-budget");
                match value.parse::<u64>() {
                    Ok(n) => {
                        staleness_budget = Some(n);
                    }
                    _ => {
                        eprintln!(
                            "--staleness-budget expects a microsecond count \
                             (0 = never stale), got '{value}'"
                        );
                        std::process::exit(2);
                    }
                }
            }
            "--fast-confidence" => {
                let value = require_value(&mut args, "--fast-confidence");
                match value.parse::<f64>() {
                    Ok(f) if (0.0..=1.0).contains(&f) => {
                        fast_confidence = Some(f);
                    }
                    _ => {
                        eprintln!("--fast-confidence expects a number in [0, 1], got '{value}'");
                        std::process::exit(2);
                    }
                }
            }
            "--trace" => {
                trace_path = Some(require_value(&mut args, "--trace"));
            }
            "--help" | "-h" => {
                println!(
                    "repro [--scale small|medium|paper|web] [--table N]... [--figure 3] [--jobs N] \
                     [--fault-rate F] [--trace PATH] [--serve-workload N] [--serve-workers W] \
                     [--online-waves N] [--web-domains N] \
                     [--attack link-farm|cloak|mimicry] [--attack-strength S] \
                     [--federation N] [--staleness-budget M] [--fast-confidence F]"
                );
                return;
            }
            other => {
                eprintln!("unknown argument '{other}'");
                std::process::exit(2);
            }
        }
    }

    let started = Instant::now();
    eprintln!("[repro] generating corpus at {scale:?} scale…");
    let ctx = match ReproContext::try_new(scale) {
        Ok(ctx) => ctx,
        Err(e) => {
            eprintln!("[repro] corpus extraction failed: {e}");
            std::process::exit(1);
        }
    };
    eprintln!(
        "[repro] corpus ready in {:.1}s ({} + {} pharmacies, {} workers)",
        started.elapsed().as_secs_f64(),
        ctx.corpus1.len(),
        ctx.corpus2.len(),
        exec.jobs()
    );

    let report = render_report_with(&ctx, &sel, exec, fault_rate);
    print!("{}", report.output);

    if let Some(requests) = serve_workload {
        // A pure suffix, like the robustness study: everything above is
        // byte-identical to a run without the flag, and the section
        // itself is byte-identical at any worker count.
        let serve_started = Instant::now();
        let (table, stats) = serving_study(&ctx, requests, serve_workers);
        println!("{table}");
        let elapsed = serve_started.elapsed().as_secs_f64();
        let obs = pharmaverify_obs::global();
        let quantile = |q: f64| {
            obs.histogram("serve/latency_micros")
                .and_then(|h| h.quantile(q))
                .map_or_else(|| "n/a".to_string(), |v| format!("≤{v}µs"))
        };
        eprintln!(
            "[repro] serving: {} requests in {elapsed:.1}s ({:.0} req/s, {} workers), \
             latency p50 {} p99 {}",
            stats.requests,
            stats.requests as f64 / elapsed.max(f64::EPSILON),
            serve_workers,
            quantile(0.5),
            quantile(0.99),
        );
    }

    if let Some(waves) = online_waves {
        // Another pure suffix: the online study replays a drifting
        // workload, retrains on trigger, and hot-swaps the model while
        // the service keeps answering. Counts only; wall time on stderr.
        let online_started = Instant::now();
        let (table, stats) = online_study(&ctx, waves, serve_workers);
        println!("{table}");
        eprintln!(
            "[repro] online: {} responses over {waves} waves in {:.1}s \
             ({} retrains, final model v{})",
            stats.responses,
            online_started.elapsed().as_secs_f64(),
            stats.retrains,
            stats.final_version,
        );
    }

    if let Some(kind) = attack {
        // Another pure suffix: the adversarial study replays the attack
        // at strengths 0, S/2, S and measures OPC/OPR with the spam-mass
        // defense off and on. Byte-identical at any worker count.
        let attack_started = Instant::now();
        let table = adversarial_study(&ctx, exec, kind, attack_strength);
        println!("{table}");
        eprintln!(
            "[repro] adversarial: {kind} sweep to strength {attack_strength:.2} in {:.1}s",
            attack_started.elapsed().as_secs_f64(),
        );
    }

    if scale == Scale::Web {
        // The final pure suffix: web-tier scale study. Wall clocks stay
        // on stderr; the table holds only seed-determined facts.
        let obs = pharmaverify_obs::global();
        let build_started = Instant::now();
        let build = build_web_tier(web_domains, obs);
        let build_secs = build_started.elapsed().as_secs_f64();
        let rank_started = Instant::now();
        let scores = rank_web_tier(&build, &exec, obs);
        let rank_secs = rank_started.elapsed().as_secs_f64();
        println!("{}", scale_section(&build, &scores));
        eprintln!(
            "[repro] scale: generated {} domains in {build_secs:.1}s ({:.0} domains/sec, \
             {} shards)",
            build.config.domains,
            build.config.domains as f64 / build_secs.max(f64::EPSILON),
            build.shards,
        );
        eprintln!(
            "[repro] scale: {} power iterations over {} edges in {rank_secs:.1}s \
             ({:.0} edges/sec/iteration, {} workers)",
            scores.config.iterations,
            build.graph.edge_count(),
            (build.graph.edge_count() * scores.config.iterations) as f64
                / rank_secs.max(f64::EPSILON),
            exec.jobs(),
        );
    }

    if let Some(requests) = federation {
        // The final pure suffix: the tiered federation replay. The table
        // holds only seed-determined counts; wall time stays on stderr.
        let federation_started = Instant::now();
        let (table, stats) = federation_study(
            &ctx,
            requests,
            serve_workers,
            staleness_budget,
            fast_confidence,
        );
        println!("{table}");
        let elapsed = federation_started.elapsed().as_secs_f64();
        eprintln!(
            "[repro] federation: {} requests in {elapsed:.1}s ({:.0} req/s, {} workers), \
             {} answered before the slow path",
            stats.requests,
            stats.requests as f64 / elapsed.max(f64::EPSILON),
            serve_workers,
            stats.answered_cheap(),
        );
    }

    let obs = pharmaverify_obs::global();
    for (path, count, micros) in obs.span_totals() {
        if let Some(name) = path.strip_prefix("report/section/") {
            if !name.contains('/') {
                eprintln!(
                    "[repro] {name} in {:.1}s (×{count})",
                    micros as f64 / 1_000_000.0
                );
            }
        }
    }
    eprintln!("[repro] artifact cache (stage: hits/misses):");
    for c in ctx.cache_counters() {
        eprintln!(
            "[repro]   {:<18} {:>4} hits / {:<4} misses",
            c.stage, c.hits, c.misses
        );
    }
    if let Some(path) = trace_path {
        if let Err(e) = std::fs::write(&path, obs.render_trace()) {
            eprintln!("[repro] failed to write trace to '{path}': {e}");
            std::process::exit(1);
        }
        eprintln!("[repro] trace written to {path}");
    }
    let (hits, misses) = ctx.store.totals();
    eprintln!(
        "[repro] done in {:.1}s ({hits} cache hits, {misses} misses)",
        started.elapsed().as_secs_f64()
    );
}
