//! Reproduces the paper's tables and figures.
//!
//! ```text
//! repro [--scale small|medium|paper] [--table N]... [--figure 3]
//! ```
//!
//! With no selection, every table and figure is printed. Scale defaults
//! to the `PHARMAVERIFY_SCALE` environment variable, then to `paper`.

use pharmaverify_bench::{tables, ReproContext, Scale};
use std::collections::BTreeSet;
use std::time::Instant;

fn main() {
    let mut scale = Scale::from_env();
    let mut selected_tables: BTreeSet<u32> = BTreeSet::new();
    let mut selected_figures: BTreeSet<u32> = BTreeSet::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let value = args.next().unwrap_or_default();
                scale = Scale::parse(&value).unwrap_or_else(|| {
                    eprintln!("unknown scale '{value}' (small|medium|paper)");
                    std::process::exit(2);
                });
            }
            "--table" => {
                let value = args.next().unwrap_or_default();
                match value.parse() {
                    Ok(n) if (1..=17).contains(&n) => {
                        selected_tables.insert(n);
                    }
                    _ => {
                        eprintln!("--table expects a number in 1..=17, got '{value}'");
                        std::process::exit(2);
                    }
                }
            }
            "--figure" => {
                let value = args.next().unwrap_or_default();
                match value.parse() {
                    Ok(3u32) => {
                        selected_figures.insert(3);
                    }
                    _ => {
                        eprintln!("--figure expects 3 (the only data figure), got '{value}'");
                        std::process::exit(2);
                    }
                }
            }
            "--help" | "-h" => {
                println!("repro [--scale small|medium|paper] [--table N]... [--figure 3]");
                return;
            }
            other => {
                eprintln!("unknown argument '{other}'");
                std::process::exit(2);
            }
        }
    }
    let all = selected_tables.is_empty() && selected_figures.is_empty();
    let want_table = |n: u32| all || selected_tables.contains(&n);
    let want_figure = |n: u32| all || selected_figures.contains(&n);

    let started = Instant::now();
    eprintln!("[repro] generating corpus at {scale:?} scale…");
    let ctx = ReproContext::new(scale);
    eprintln!(
        "[repro] corpus ready in {:.1}s ({} + {} pharmacies)",
        started.elapsed().as_secs_f64(),
        ctx.corpus1.len(),
        ctx.corpus2.len()
    );
    run(&ctx, &want_table, &want_figure, all);
    eprintln!("[repro] done in {:.1}s", started.elapsed().as_secs_f64());
}

fn run(
    ctx: &ReproContext,
    want_table: &dyn Fn(u32) -> bool,
    want_figure: &dyn Fn(u32) -> bool,
    all: bool,
) {
    let timed = |name: &str, f: &mut dyn FnMut()| {
        let t = Instant::now();
        f();
        eprintln!("[repro] {name} in {:.1}s", t.elapsed().as_secs_f64());
    };

    if want_table(1) {
        println!("{}", tables::table1(ctx));
    }
    if want_table(2) {
        println!("{}", tables::table2());
    }
    if (3..=6).any(want_table) {
        timed("tables 3-6 (TF-IDF grid)", &mut || {
            let grid = tables::tfidf_grid(ctx);
            if want_table(3) {
                println!("{}", tables::table3(&grid));
            }
            if want_table(4) {
                let (a, b) = tables::table4(&grid);
                println!("{a}\n{b}");
            }
            if want_table(5) {
                let (a, b) = tables::table5(&grid);
                println!("{a}\n{b}");
            }
            if want_table(6) {
                println!("{}", tables::table6(&grid));
            }
        });
    }
    let mut mlp_1000 = None;
    if (7..=10).any(want_table) || want_table(14) {
        timed("tables 7-10 (N-Gram-Graph grid)", &mut || {
            let grid = tables::ngg_grid(ctx);
            // MLP row, 1000-term column — reused by Table 14.
            mlp_1000 = Some(grid.summaries[3][2]);
            if want_table(7) {
                println!("{}", tables::table7(&grid));
            }
            if want_table(8) {
                let (a, b) = tables::table8(&grid);
                println!("{a}\n{b}");
            }
            if want_table(9) {
                let (a, b) = tables::table9(&grid);
                println!("{a}\n{b}");
            }
            if want_table(10) {
                println!("{}", tables::table10(&grid));
            }
        });
    }
    if want_table(11) {
        println!("{}", tables::table11(ctx));
    }
    let mut network_summary = None;
    if (12..=14).any(want_table) {
        timed("tables 12-13 (network)", &mut || {
            let outcome = tables::network_outcome(ctx);
            network_summary = Some(outcome.aggregate());
            if want_table(12) {
                println!("{}", tables::table12(&outcome));
            }
            if want_table(13) {
                println!("{}", tables::table13(&outcome));
            }
            println!("{}", tables::ablation_pagerank(ctx));
        });
    }
    // Both inputs are Some whenever table 14 is selected: the NGG grid
    // runs on `want_table(14)` and the network block on 12..=14.
    if want_table(14) {
        if let (Some(mlp), Some(net)) = (mlp_1000, network_summary) {
            timed("table 14 (ensemble)", &mut || {
                println!("{}", tables::table14(ctx, mlp, net));
            });
        }
    }
    if want_table(15) {
        timed("table 15 (ranking) + outliers", &mut || {
            println!("{}", tables::table15(ctx));
            println!("{}", tables::outlier_analysis(ctx));
        });
    }
    if want_table(16) || want_table(17) {
        timed("tables 16-17 (drift)", &mut || {
            let (t16, t17) = tables::table16_17(ctx);
            if want_table(16) {
                println!("{t16}");
            }
            if want_table(17) {
                println!("{t17}");
            }
        });
    }
    if want_figure(3) {
        println!("{}", pharmaverify_bench::figures::figure3());
    }
    if all {
        timed("ablations + future work", &mut || {
            println!("{}", tables::ablation_sampling(ctx));
            println!("{}", tables::ablation_label_noise(ctx));
            println!("{}", tables::ablation_representations(ctx));
            println!("{}", tables::ablation_svm_ranking(ctx));
            println!("{}", tables::ablation_feature_selection(ctx));
            println!("{}", tables::future_work_network(ctx));
            println!("{}", tables::future_work_combined(ctx));
        });
    }
}
