//! The adversarial study (ISSUE 9): parameterized attacks replayed
//! against the Dataset 1 snapshot, measured with the spam-mass defense
//! off and on.
//!
//! `repro --attack <kind> --attack-strength S` sweeps strengths 0, S/2,
//! and S. Each strength mutates the clean snapshot through
//! [`pharmaverify_corpus::apply_attack`] (a pure function of the seed
//! and the knobs), re-extracts the corpus, and evaluates
//!
//! * **OPC** — the network classifier with the plain TrustRank feature
//!   (defense off) vs the spam-mass-defended feature
//!   `max(trust − spam_mass, 0)` (defense on);
//! * **OPR** — pairwise orderedness of the combined rank with the plain
//!   vs the defended network component.
//!
//! The strength-0 row is the unattacked baseline: `apply_attack` at
//! strength 0 is a byte-identical no-op, so its corpus is exactly
//! `corpus1` and the row doubles as a cache-warm sanity anchor. The
//! section is a *pure suffix* of the regular report and byte-identical
//! at any worker count — strengths dispatch across the executor, which
//! preserves index order.

use crate::context::{ReproContext, REPRO_SEED};
use pharmaverify_core::extensions::evaluate_network_variant;
use pharmaverify_core::pipeline::{Executor, Pipeline};
use pharmaverify_core::rank::{evaluate_ranking_defended_in, evaluate_ranking_in, RankingMethod};
use pharmaverify_core::report::Table;
use pharmaverify_core::{extract_corpus, NetworkVariant, TextLearnerKind};
use pharmaverify_corpus::{apply_attack, AttackConfig, AttackKind};
use pharmaverify_crawl::CrawlConfig;
use pharmaverify_ml::{EvalSummary, Sampling};

/// Salt separating the attack universe from every other seeded draw.
const ATTACK_SALT: u64 = 0xADA7;

/// Runs the attack sweep and renders the "Adversarial" table.
///
/// Strengths 0, `max_strength`/2, and `max_strength` run as independent
/// executor items; each builds its own attacked corpus against the
/// shared artifact store (distinct fingerprints keep the cache key
/// spaces apart, and the strength-0 corpus *is* `corpus1`, so its
/// artifacts come back warm).
pub fn adversarial_study(
    ctx: &ReproContext,
    exec: Executor,
    kind: AttackKind,
    max_strength: f64,
) -> Table {
    let _span = pharmaverify_obs::global().span("report/section/adversarial (attack study)");
    let strengths: [f64; 3] = [0.0, max_strength * 0.5, max_strength];

    struct StrengthRow {
        off: EvalSummary,
        on: EvalSummary,
        pairord_off: f64,
        pairord_on: f64,
        farm: usize,
        mutated: usize,
    }

    let strengths_ref = &strengths;
    let rows: Vec<StrengthRow> = exec.run(strengths.len(), |i| {
        let strength = strengths_ref[i];
        let attacked = apply_attack(
            &ctx.snapshot1,
            &AttackConfig::new(kind, strength),
            REPRO_SEED ^ ATTACK_SALT,
        );
        // lint:allow(no-panic): the attacked snapshot's seed URLs are
        // well-formed by construction — the generators only emit
        // `http://{domain}/` roots — so extraction failure is a bug.
        #[allow(clippy::expect_used)]
        let corpus = extract_corpus(&attacked.snapshot, &CrawlConfig::default())
            .expect("attacked snapshot extracts");
        let artifacts = Pipeline::new(&ctx.store, &corpus).web_graph();
        let off = evaluate_network_variant(&corpus, &artifacts, NetworkVariant::Trust, ctx.cv)
            .aggregate();
        let on =
            evaluate_network_variant(&corpus, &artifacts, NetworkVariant::SpamMassDefense, ctx.cv)
                .aggregate();
        let method = RankingMethod::TfIdf {
            kind: TextLearnerKind::Nbm,
            sampling: Sampling::None,
        };
        let pairord_off = evaluate_ranking_in(
            Pipeline::new(&ctx.store, &corpus),
            method,
            Some(1000),
            ctx.cv,
        )
        .pairord;
        let pairord_on = evaluate_ranking_defended_in(
            Pipeline::new(&ctx.store, &corpus),
            method,
            Some(1000),
            ctx.cv,
        )
        .pairord;
        StrengthRow {
            off,
            on,
            pairord_off,
            pairord_on,
            farm: attacked.farm_domains.len(),
            mutated: attacked.mutated_domains.len(),
        }
    });

    let mut t = Table::new(
        &format!("Adversarial: {kind} attack, spam-mass defense off vs on"),
        &[
            "Strength",
            "OPC Acc off",
            "OPC AUC off",
            "OPC Acc def",
            "OPC AUC def",
            "OPR off",
            "OPR def",
            "farm sites",
            "mutated sites",
        ],
    );
    for (strength, row) in strengths.iter().zip(rows) {
        t.push_row(vec![
            format!("{strength:.3}"),
            Table::fmt2(row.off.accuracy),
            Table::fmt2(row.off.auc),
            Table::fmt2(row.on.accuracy),
            Table::fmt2(row.on.auc),
            Table::fmt3(row.pairord_off),
            Table::fmt3(row.pairord_on),
            row.farm.to_string(),
            row.mutated.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Scale;

    /// The whole sweep at small scale: three rows, farm counts growing
    /// with strength under the link-farm attack, zero farm sites at
    /// strength 0.
    #[test]
    fn link_farm_sweep_renders_three_rows() {
        let ctx = ReproContext::new(Scale::Small);
        let table = adversarial_study(&ctx, Executor::new(2), AttackKind::LinkFarm, 1.0);
        let text = table.to_string();
        assert!(text.contains("Adversarial: link-farm attack"), "{text}");
        let farm_counts: Vec<usize> = table
            .rows
            .iter()
            .map(|r| r[7].parse().expect("farm count column"))
            .collect();
        assert_eq!(farm_counts.len(), 3, "one row per strength");
        assert_eq!(farm_counts[0], 0, "strength 0 injects nothing");
        assert!(
            farm_counts[1] <= farm_counts[2] && farm_counts[2] > 0,
            "farm size grows with strength: {farm_counts:?}"
        );
    }

    /// Byte-identical at any worker count — the determinism contract
    /// the audit enforces end-to-end, checked here at module level.
    #[test]
    fn study_is_byte_identical_across_worker_counts() {
        let ctx = ReproContext::new(Scale::Small);
        let serial = adversarial_study(&ctx, Executor::new(1), AttackKind::Mimicry, 0.8);
        let parallel = adversarial_study(&ctx, Executor::new(4), AttackKind::Mimicry, 0.8);
        assert_eq!(serial.to_string(), parallel.to_string());
    }
}
