//! Assembles the full reproduction report from the table generators.
//!
//! The report is a fixed-order concatenation of sections (tables 1–17,
//! figure 3, then the ablations and future-work studies), but the
//! sections themselves are independent up to two data dependencies —
//! Table 14 reads the best text summary out of the NGG grid and the
//! network summary out of the network block. [`render_report`] therefore
//! runs in two phases: every independent section dispatches across the
//! [`Executor`], then Table 14 runs against the (by now warm) artifact
//! store. Assembly order is fixed, so the rendered output is
//! byte-identical at any thread count.

use crate::context::ReproContext;
use crate::{figures, tables};
use pharmaverify_core::pipeline::Executor;
use pharmaverify_core::report::Table;
use pharmaverify_ml::EvalSummary;
use std::collections::BTreeSet;

/// Which tables/figures to render. An empty selection means *everything*:
/// all tables, all figures, plus the ablation and future-work studies
/// (which only print in the everything mode, mirroring the paper's
/// appendix material).
#[derive(Debug, Clone, Default)]
pub struct Selection {
    tables: BTreeSet<u32>,
    figures: BTreeSet<u32>,
}

impl Selection {
    /// The everything selection.
    pub fn everything() -> Selection {
        Selection::default()
    }

    /// Adds one table (1..=17) to the selection.
    pub fn add_table(&mut self, n: u32) {
        self.tables.insert(n);
    }

    /// Adds one figure (3 is the only data figure) to the selection.
    pub fn add_figure(&mut self, n: u32) {
        self.figures.insert(n);
    }

    /// True when nothing was selected explicitly, i.e. render everything.
    pub fn is_everything(&self) -> bool {
        self.tables.is_empty() && self.figures.is_empty()
    }

    /// Should table `n` be rendered?
    pub fn wants_table(&self, n: u32) -> bool {
        self.is_everything() || self.tables.contains(&n)
    }

    /// Should figure `n` be rendered?
    pub fn wants_figure(&self, n: u32) -> bool {
        self.is_everything() || self.figures.contains(&n)
    }
}

/// A rendered report. Per-section timing moved into the observability
/// layer: every section runs under a `report/section/<name>` span in the
/// process-wide registry, where the durations live in the trace's
/// non-deterministic view instead of a side-channel field.
#[derive(Debug, Clone)]
pub struct ReproReport {
    /// The full rendered output (what the `repro` binary prints to
    /// stdout). Deterministic for a given context and selection.
    pub output: String,
}

/// The independent sections of phase one, in output order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Section {
    Table1,
    Table2,
    TfIdfGrid,
    NggGrid,
    Table11,
    Network,
    Ranking,
    Drift,
    Figure3,
    AblSampling,
    AblLabelNoise,
    AblRepresentations,
    AblSvmRanking,
    AblFeatureSelection,
    FutureNetwork,
    FutureCombined,
    Robustness,
}

impl Section {
    fn name(self) -> &'static str {
        match self {
            Section::Table1 => "table 1 (datasets)",
            Section::Table2 => "table 2 (abbreviations)",
            Section::TfIdfGrid => "tables 3-6 (TF-IDF grid)",
            Section::NggGrid => "tables 7-10 (N-Gram-Graph grid)",
            Section::Table11 => "table 11 (top linked)",
            Section::Network => "tables 12-13 (network)",
            Section::Ranking => "table 15 (ranking) + outliers",
            Section::Drift => "tables 16-17 (drift)",
            Section::Figure3 => "figure 3 (TrustRank demo)",
            Section::AblSampling => "ablation (sampling)",
            Section::AblLabelNoise => "ablation (label noise)",
            Section::AblRepresentations => "ablation (representations)",
            Section::AblSvmRanking => "ablation (SVM ranking)",
            Section::AblFeatureSelection => "ablation (feature selection)",
            Section::FutureNetwork => "future work (network)",
            Section::FutureCombined => "future work (combined)",
            Section::Robustness => "robustness (fault injection)",
        }
    }
}

/// One rendered section plus the values later sections need.
struct SectionOut {
    section: Section,
    text: String,
    /// MLP row, 1000-term column of the NGG grid — reused by Table 14.
    mlp_1000: Option<EvalSummary>,
    /// Aggregate network summary — reused by Table 14.
    network: Option<EvalSummary>,
}

/// Appends a table the way `println!("{table}")` would.
fn push_table(out: &mut String, t: &Table) {
    out.push_str(&format!("{t}\n"));
}

fn push_pair(out: &mut String, (a, b): (Table, Table)) {
    out.push_str(&format!("{a}\n{b}\n"));
}

fn run_section(
    ctx: &ReproContext,
    sel: &Selection,
    exec: Executor,
    fault_rate: f64,
    section: Section,
) -> SectionOut {
    // lint:allow(obs-name): section names come from the fixed Section enum, not input data.
    let _span = pharmaverify_obs::global().span(&format!("report/section/{}", section.name()));
    let mut text = String::new();
    let mut mlp_1000 = None;
    let mut network = None;
    match section {
        Section::Table1 => push_table(&mut text, &tables::table1(ctx)),
        Section::Table2 => push_table(&mut text, &tables::table2()),
        Section::TfIdfGrid => {
            let grid = tables::tfidf_grid(ctx, exec);
            if sel.wants_table(3) {
                push_table(&mut text, &tables::table3(&grid));
            }
            if sel.wants_table(4) {
                push_pair(&mut text, tables::table4(&grid));
            }
            if sel.wants_table(5) {
                push_pair(&mut text, tables::table5(&grid));
            }
            if sel.wants_table(6) {
                push_table(&mut text, &tables::table6(&grid));
            }
        }
        Section::NggGrid => {
            let grid = tables::ngg_grid(ctx, exec);
            // MLP row, 1000-term column — reused by Table 14.
            mlp_1000 = Some(grid.summaries[3][2]);
            if sel.wants_table(7) {
                push_table(&mut text, &tables::table7(&grid));
            }
            if sel.wants_table(8) {
                push_pair(&mut text, tables::table8(&grid));
            }
            if sel.wants_table(9) {
                push_pair(&mut text, tables::table9(&grid));
            }
            if sel.wants_table(10) {
                push_table(&mut text, &tables::table10(&grid));
            }
        }
        Section::Table11 => push_table(&mut text, &tables::table11(ctx)),
        Section::Network => {
            let outcome = tables::network_outcome(ctx);
            network = Some(outcome.aggregate());
            if sel.wants_table(12) {
                push_table(&mut text, &tables::table12(&outcome));
            }
            if sel.wants_table(13) {
                push_table(&mut text, &tables::table13(&outcome));
            }
            push_table(&mut text, &tables::ablation_pagerank(ctx));
        }
        Section::Ranking => {
            push_table(&mut text, &tables::table15(ctx, exec));
            push_table(&mut text, &tables::outlier_analysis(ctx));
        }
        Section::Drift => {
            let (t16, t17) = tables::table16_17(ctx, exec);
            if sel.wants_table(16) {
                push_table(&mut text, &t16);
            }
            if sel.wants_table(17) {
                push_table(&mut text, &t17);
            }
        }
        Section::Figure3 => push_table(&mut text, &figures::figure3()),
        Section::AblSampling => push_table(&mut text, &tables::ablation_sampling(ctx)),
        Section::AblLabelNoise => push_table(&mut text, &tables::ablation_label_noise(ctx)),
        Section::AblRepresentations => {
            push_table(&mut text, &tables::ablation_representations(ctx));
        }
        Section::AblSvmRanking => push_table(&mut text, &tables::ablation_svm_ranking(ctx)),
        Section::AblFeatureSelection => {
            push_table(&mut text, &tables::ablation_feature_selection(ctx));
        }
        Section::FutureNetwork => push_table(&mut text, &tables::future_work_network(ctx)),
        Section::FutureCombined => push_table(&mut text, &tables::future_work_combined(ctx)),
        Section::Robustness => {
            push_table(&mut text, &tables::robustness_study(ctx, exec, fault_rate));
        }
    }
    SectionOut {
        section,
        text,
        mlp_1000,
        network,
    }
}

/// Renders the selected tables and figures against the context's shared
/// artifact store, dispatching independent sections (and the grid cells
/// within them) across `exec`. The returned output is byte-identical for
/// any executor width.
pub fn render_report(ctx: &ReproContext, sel: &Selection, exec: Executor) -> ReproReport {
    render_report_with(ctx, sel, exec, 0.0)
}

/// [`render_report`] plus the fault-injection robustness study: when
/// `fault_rate > 0`, a robustness section (OPC/OPR at fault rates 0,
/// rate/4, rate/2, rate) is appended *after* every other section, so the
/// fault-free prefix of the output stays byte-identical to a plain
/// [`render_report`] run. A `fault_rate` of 0 renders no extra section
/// at all.
pub fn render_report_with(
    ctx: &ReproContext,
    sel: &Selection,
    exec: Executor,
    fault_rate: f64,
) -> ReproReport {
    let mut plan: Vec<Section> = Vec::new();
    if sel.wants_table(1) {
        plan.push(Section::Table1);
    }
    if sel.wants_table(2) {
        plan.push(Section::Table2);
    }
    if (3..=6).any(|n| sel.wants_table(n)) {
        plan.push(Section::TfIdfGrid);
    }
    if (7..=10).any(|n| sel.wants_table(n)) || sel.wants_table(14) {
        plan.push(Section::NggGrid);
    }
    if sel.wants_table(11) {
        plan.push(Section::Table11);
    }
    if (12..=14).any(|n| sel.wants_table(n)) {
        plan.push(Section::Network);
    }
    if sel.wants_table(15) {
        plan.push(Section::Ranking);
    }
    if sel.wants_table(16) || sel.wants_table(17) {
        plan.push(Section::Drift);
    }
    if sel.wants_figure(3) {
        plan.push(Section::Figure3);
    }
    if sel.is_everything() {
        plan.extend([
            Section::AblSampling,
            Section::AblLabelNoise,
            Section::AblRepresentations,
            Section::AblSvmRanking,
            Section::AblFeatureSelection,
            Section::FutureNetwork,
            Section::FutureCombined,
        ]);
    }
    // The robustness study goes last so a faulted run's output is the
    // fault-free output plus a suffix.
    if fault_rate > 0.0 {
        plan.push(Section::Robustness);
    }

    // Phase one: every section is independent; the executor preserves
    // index (= output) order.
    let plan_ref = &plan;
    let sections: Vec<SectionOut> = exec.run(plan.len(), |i| {
        run_section(ctx, sel, exec, fault_rate, plan_ref[i])
    });

    // Phase two: Table 14 needs the NGG grid's best text model and the
    // network summary. Both are Some whenever table 14 is selected: the
    // NGG grid runs on `wants_table(14)` and the network block on 12..=14.
    let mlp_1000 = sections.iter().find_map(|s| s.mlp_1000);
    let network = sections.iter().find_map(|s| s.network);
    let table14 = match (sel.wants_table(14), mlp_1000, network) {
        (true, Some(mlp), Some(net)) => {
            let _span = pharmaverify_obs::global().span("report/section/table 14 (ensemble)");
            let mut text = String::new();
            push_table(&mut text, &tables::table14(ctx, mlp, net));
            Some(text)
        }
        _ => None,
    };

    // Assembly: fixed output order; Table 14 slots in right after the
    // network block, before the ranking section.
    let mut output = String::new();
    for s in &sections {
        output.push_str(&s.text);
        if s.section == Section::Network {
            if let Some(text) = &table14 {
                output.push_str(text);
            }
        }
    }
    ReproReport { output }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_selection_means_everything() {
        let sel = Selection::everything();
        assert!(sel.is_everything());
        assert!(sel.wants_table(1));
        assert!(sel.wants_table(17));
        assert!(sel.wants_figure(3));
    }

    #[test]
    fn explicit_selection_excludes_the_rest() {
        let mut sel = Selection::everything();
        sel.add_table(3);
        assert!(!sel.is_everything());
        assert!(sel.wants_table(3));
        assert!(!sel.wants_table(4));
        assert!(!sel.wants_figure(3));
    }

    #[test]
    fn figure_only_selection_skips_tables() {
        let mut sel = Selection::everything();
        sel.add_figure(3);
        assert!(sel.wants_figure(3));
        assert!(!sel.wants_table(1));
    }
}
