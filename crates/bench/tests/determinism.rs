//! The table harness must produce byte-identical output regardless of
//! executor width or cache warmth: a serial fresh run, a parallel run
//! against the warm store, and a parallel fresh run all render the same
//! report. This is the contract that lets `repro --jobs N` and the xtask
//! determinism audit trust parallel execution.

use pharmaverify_bench::{render_report, ReproContext, Scale, Selection};
use pharmaverify_core::pipeline::Executor;

#[test]
fn report_is_identical_across_thread_counts_and_cache_warmth() {
    let sel = Selection::everything();

    let ctx = ReproContext::new(Scale::Small);
    let serial = render_report(&ctx, &sel, Executor::serial());
    assert!(!serial.output.is_empty());
    let (hits_fresh, misses_fresh) = ctx.store.totals();
    assert!(misses_fresh > 0, "a fresh run must compute artifacts");
    assert!(
        hits_fresh > 0,
        "tables sharing a configuration must reuse artifacts"
    );

    // Same context, warm store, wide executor: artifacts served from
    // cache, nothing recomputed, identical bytes.
    let warm = render_report(&ctx, &sel, Executor::new(4));
    assert_eq!(serial.output, warm.output, "warm parallel run must match");
    let (_, misses_warm) = ctx.store.totals();
    assert_eq!(
        misses_fresh, misses_warm,
        "a warm rerun must not recompute any artifact"
    );

    // Fresh context, wide executor: artifacts race to compute, but the
    // per-key once-cell and ordered merge keep the bytes identical.
    let ctx2 = ReproContext::new(Scale::Small);
    let parallel = render_report(&ctx2, &sel, Executor::new(4));
    assert_eq!(
        serial.output, parallel.output,
        "fresh parallel run must match the serial run"
    );
    let (_, misses_parallel) = ctx2.store.totals();
    assert_eq!(
        misses_fresh, misses_parallel,
        "parallelism must not change which artifacts get computed"
    );
}

#[test]
fn explicit_selection_renders_only_the_selected_table() {
    let ctx = ReproContext::new(Scale::Small);
    let mut sel = Selection::everything();
    sel.add_table(1);
    sel.add_table(2);
    let report = render_report(&ctx, &sel, Executor::serial());
    assert!(report.output.contains("Table 1: Datasets"));
    assert!(report.output.contains("Table 2:"));
    assert!(!report.output.contains("Table 3:"));
    assert!(!report.output.contains("Ablation:"));
    let t1 = report.output.find("Table 1: Datasets");
    let t2 = report.output.find("Table 2:");
    assert!(t1 < t2, "sections must assemble in table order");
}
