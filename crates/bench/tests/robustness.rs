//! The fault-injection robustness study must uphold three contracts:
//! the fault universe is a pure function of the seed (two runs at the
//! same rate are byte-identical at any executor width), the faulted
//! report is the fault-free report plus a pure suffix, and the appended
//! table sweeps at least three distinct fault rates.

use pharmaverify_bench::{render_report, render_report_with, ReproContext, Scale, Selection};
use pharmaverify_core::pipeline::Executor;

#[test]
fn fault_injected_report_is_deterministic_and_a_pure_suffix() {
    let sel = Selection::everything();

    // Fault-free baseline, then a faulted run over the same warm store.
    let ctx = ReproContext::new(Scale::Small);
    let clean = render_report(&ctx, &sel, Executor::serial());
    let faulted = render_report_with(&ctx, &sel, Executor::serial(), 0.2);

    assert!(
        faulted.output.starts_with(&clean.output),
        "faulted output must extend the fault-free output, not perturb it"
    );
    let suffix = &faulted.output[clean.output.len()..];
    assert!(
        suffix.contains("Robustness"),
        "appended section must be the robustness study, got: {suffix:?}"
    );

    // The study sweeps rate 0 plus at least three nonzero rates.
    for rate in ["0.000", "0.050", "0.100", "0.200"] {
        assert!(
            suffix.contains(&format!("| {rate}")),
            "missing fault-rate row {rate} in: {suffix}"
        );
    }

    // Fresh context, wide executor: the faulted report must come out
    // byte-identical — fault schedules, retries, and breaker trips are
    // all seed-derived, never scheduling-derived.
    let ctx2 = ReproContext::new(Scale::Small);
    let parallel = render_report_with(&ctx2, &sel, Executor::new(4), 0.2);
    assert_eq!(
        faulted.output, parallel.output,
        "fault injection must stay deterministic across thread counts"
    );
}

#[test]
fn zero_fault_rate_appends_nothing() {
    let ctx = ReproContext::new(Scale::Small);
    let mut sel = Selection::everything();
    sel.add_table(1);
    let plain = render_report(&ctx, &sel, Executor::serial());
    let zero = render_report_with(&ctx, &sel, Executor::serial(), 0.0);
    assert_eq!(plain.output, zero.output);
    assert!(!zero.output.contains("Robustness"));
}
