//! Black-box tests of the `repro` binary's argument handling: every
//! value-taking flag reports a uniform "missing value" error when the
//! command line ends at the flag, and every malformed value names the
//! flag's accepted range — all on exit code 2, before any expensive
//! corpus work starts.

use std::process::{Command, Output};

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .env_remove("PHARMAVERIFY_SCALE")
        .env_remove("PHARMAVERIFY_TRACE")
        .output()
        .expect("binary runs")
}

fn stderr(output: &Output) -> String {
    String::from_utf8_lossy(&output.stderr).to_string()
}

/// Every value-taking flag of the harness.
const VALUE_FLAGS: &[&str] = &[
    "--scale",
    "--table",
    "--figure",
    "--jobs",
    "--fault-rate",
    "--trace",
    "--serve-workload",
    "--serve-workers",
    "--online-waves",
    "--web-domains",
    "--attack",
    "--attack-strength",
    "--federation",
    "--staleness-budget",
    "--fast-confidence",
];

#[test]
fn trailing_flag_without_value_exits_two_with_uniform_message() {
    for flag in VALUE_FLAGS {
        let out = run(&[flag]);
        assert_eq!(
            out.status.code(),
            Some(2),
            "{flag}: expected exit 2, got {:?}",
            out.status.code()
        );
        let err = stderr(&out);
        assert!(
            err.contains(&format!("missing value for '{flag}'")),
            "{flag}: stderr was {err:?}"
        );
    }
}

#[test]
fn bad_scale_is_rejected() {
    let out = run(&["--scale", "huge"]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr(&out);
    assert!(err.contains("unknown scale 'huge'"), "{err:?}");
    assert!(err.contains("small|medium|paper"), "{err:?}");
}

#[test]
fn bad_table_numbers_are_rejected() {
    for value in ["0", "18", "twelve", "-1"] {
        let out = run(&["--table", value]);
        assert_eq!(out.status.code(), Some(2), "--table {value}");
        assert!(
            stderr(&out).contains("--table expects a number in 1..=17"),
            "--table {value}: {:?}",
            stderr(&out)
        );
    }
}

#[test]
fn bad_figure_numbers_are_rejected() {
    for value in ["1", "4", "pie"] {
        let out = run(&["--figure", value]);
        assert_eq!(out.status.code(), Some(2), "--figure {value}");
        assert!(
            stderr(&out).contains("--figure expects 3"),
            "--figure {value}: {:?}",
            stderr(&out)
        );
    }
}

#[test]
fn bad_job_counts_are_rejected() {
    for value in ["0", "-2", "many"] {
        let out = run(&["--jobs", value]);
        assert_eq!(out.status.code(), Some(2), "--jobs {value}");
        assert!(
            stderr(&out).contains("--jobs expects a positive worker count"),
            "--jobs {value}: {:?}",
            stderr(&out)
        );
    }
}

#[test]
fn bad_fault_rates_are_rejected() {
    for value in ["1.5", "-0.1", "often"] {
        let out = run(&["--fault-rate", value]);
        assert_eq!(out.status.code(), Some(2), "--fault-rate {value}");
        assert!(
            stderr(&out).contains("--fault-rate expects a number in [0, 1]"),
            "--fault-rate {value}: {:?}",
            stderr(&out)
        );
    }
}

#[test]
fn bad_serve_workloads_are_rejected() {
    for value in ["0", "-5", "lots", "2.5"] {
        let out = run(&["--serve-workload", value]);
        assert_eq!(out.status.code(), Some(2), "--serve-workload {value}");
        assert!(
            stderr(&out).contains("--serve-workload expects a positive request count"),
            "--serve-workload {value}: {:?}",
            stderr(&out)
        );
    }
}

#[test]
fn bad_serve_worker_counts_are_rejected() {
    for value in ["0", "-1", "pool"] {
        let out = run(&["--serve-workers", value]);
        assert_eq!(out.status.code(), Some(2), "--serve-workers {value}");
        assert!(
            stderr(&out).contains("--serve-workers expects a positive worker count"),
            "--serve-workers {value}: {:?}",
            stderr(&out)
        );
    }
}

#[test]
fn bad_online_wave_counts_are_rejected() {
    for value in ["0", "-2", "forever", "1.5"] {
        let out = run(&["--online-waves", value]);
        assert_eq!(out.status.code(), Some(2), "--online-waves {value}");
        assert!(
            stderr(&out).contains("--online-waves expects a positive wave count"),
            "--online-waves {value}: {:?}",
            stderr(&out)
        );
    }
}

#[test]
fn bad_web_domain_counts_are_rejected() {
    for value in ["0", "-100", "huge", "1e6"] {
        let out = run(&["--web-domains", value]);
        assert_eq!(out.status.code(), Some(2), "--web-domains {value}");
        assert!(
            stderr(&out).contains("--web-domains expects a positive domain count"),
            "--web-domains {value}: {:?}",
            stderr(&out)
        );
    }
}

#[test]
fn bad_attack_kinds_are_rejected() {
    for value in ["ddos", "LINK-FARM", "linkfarm", ""] {
        let out = run(&["--attack", value]);
        assert_eq!(out.status.code(), Some(2), "--attack {value}");
        assert!(
            stderr(&out).contains(&format!(
                "unknown attack '{value}' (link-farm|cloak|mimicry)"
            )),
            "--attack {value}: {:?}",
            stderr(&out)
        );
    }
}

#[test]
fn bad_attack_strengths_are_rejected() {
    for value in ["1.5", "-0.1", "strong", "NaN"] {
        let out = run(&["--attack-strength", value]);
        assert_eq!(out.status.code(), Some(2), "--attack-strength {value}");
        assert!(
            stderr(&out).contains("--attack-strength expects a number in [0, 1]"),
            "--attack-strength {value}: {:?}",
            stderr(&out)
        );
    }
}

#[test]
fn bad_federation_counts_are_rejected() {
    for value in ["0", "-5", "lots", "2.5"] {
        let out = run(&["--federation", value]);
        assert_eq!(out.status.code(), Some(2), "--federation {value}");
        assert!(
            stderr(&out).contains("--federation expects a positive request count"),
            "--federation {value}: {:?}",
            stderr(&out)
        );
    }
}

#[test]
fn bad_staleness_budgets_are_rejected() {
    for value in ["-1", "soon", "2.5", "1e3"] {
        let out = run(&["--staleness-budget", value]);
        assert_eq!(out.status.code(), Some(2), "--staleness-budget {value}");
        assert!(
            stderr(&out).contains("--staleness-budget expects a microsecond count"),
            "--staleness-budget {value}: {:?}",
            stderr(&out)
        );
    }
}

#[test]
fn bad_fast_confidences_are_rejected() {
    for value in ["1.5", "-0.1", "sure", "NaN"] {
        let out = run(&["--fast-confidence", value]);
        assert_eq!(out.status.code(), Some(2), "--fast-confidence {value}");
        assert!(
            stderr(&out).contains("--fast-confidence expects a number in [0, 1]"),
            "--fast-confidence {value}: {:?}",
            stderr(&out)
        );
    }
}

#[test]
fn federated_run_appends_federation_section_as_pure_suffix() {
    let plain = run(&["--scale", "small", "--table", "2"]);
    assert!(plain.status.success(), "{:?}", stderr(&plain));
    let federated = run(&[
        "--scale",
        "small",
        "--table",
        "2",
        "--federation",
        "32",
        "--staleness-budget",
        "400",
        "--fast-confidence",
        "0.25",
    ]);
    assert!(federated.status.success(), "{:?}", stderr(&federated));
    assert!(
        federated.stdout.starts_with(&plain.stdout),
        "federated report does not start with the plain report"
    );
    let suffix = String::from_utf8_lossy(&federated.stdout[plain.stdout.len()..]).to_string();
    assert!(
        suffix.contains("Federation: tiered verdict replay (32 requests"),
        "suffix was {suffix:?}"
    );
    assert!(suffix.contains("answered before slow path"), "{suffix:?}");
}

#[test]
fn attacked_run_appends_adversarial_section_as_pure_suffix() {
    let plain = run(&["--scale", "small", "--table", "2"]);
    assert!(plain.status.success(), "{:?}", stderr(&plain));
    let attacked = run(&[
        "--scale",
        "small",
        "--table",
        "2",
        "--attack",
        "link-farm",
        "--attack-strength",
        "0.5",
    ]);
    assert!(attacked.status.success(), "{:?}", stderr(&attacked));
    assert!(
        attacked.stdout.starts_with(&plain.stdout),
        "attacked report does not start with the plain report"
    );
    assert!(attacked.stdout.len() > plain.stdout.len());
    let suffix = String::from_utf8_lossy(&attacked.stdout[plain.stdout.len()..]).to_string();
    assert!(
        suffix.contains("Adversarial: link-farm attack, spam-mass defense off vs on"),
        "suffix was {suffix:?}"
    );
}

#[test]
fn unknown_arguments_are_rejected() {
    let out = run(&["--tables", "3"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("unknown argument '--tables'"));
}

#[test]
fn help_short_circuits_without_running() {
    for help in ["--help", "-h"] {
        let out = run(&[help]);
        assert!(out.status.success(), "{help}");
        let text = String::from_utf8_lossy(&out.stdout);
        assert!(text.contains("--trace PATH"), "{help}: {text}");
        assert!(text.contains("--fault-rate F"), "{help}: {text}");
        assert!(text.contains("--serve-workload N"), "{help}: {text}");
        assert!(text.contains("--serve-workers W"), "{help}: {text}");
        assert!(text.contains("--online-waves N"), "{help}: {text}");
        assert!(text.contains("--web-domains N"), "{help}: {text}");
        assert!(
            text.contains("--attack link-farm|cloak|mimicry"),
            "{help}: {text}"
        );
        assert!(text.contains("--attack-strength S"), "{help}: {text}");
        assert!(text.contains("--federation N"), "{help}: {text}");
        assert!(text.contains("--staleness-budget M"), "{help}: {text}");
        assert!(text.contains("--fast-confidence F"), "{help}: {text}");
    }
}

#[test]
fn unwritable_trace_path_fails_after_reporting() {
    let out = run(&[
        "--scale",
        "small",
        "--table",
        "2",
        "--trace",
        "/nonexistent-dir/trace.json",
    ]);
    assert_eq!(out.status.code(), Some(1));
    assert!(
        stderr(&out).contains("failed to write trace"),
        "{:?}",
        stderr(&out)
    );
}
