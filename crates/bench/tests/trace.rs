//! Black-box tests of the observability trace contract, driving the
//! `repro` binary as a subprocess so every run gets a fresh process-wide
//! registry.
//!
//! The contract under test: `--trace` writes a canonical JSON document
//! whose *deterministic view* is byte-identical between a serial and a
//! 4-worker run of the same seed, the span tree nests the pipeline
//! stages under the sections that drive them, and a fault-injected run
//! changes the recorded metrics without perturbing the fault-free
//! stdout prefix.

use std::path::PathBuf;
use std::process::{Command, Output};

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "pharmaverify-trace-test-{}-{name}",
        std::process::id()
    ))
}

/// Runs `repro --scale small --table 1 --table 15 [extra…]` with `jobs`
/// workers and a `--trace` file, returning `(stdout, trace)`. The small
/// two-table selection keeps each subprocess run in the seconds range
/// while still exercising the corpus, crawl, pipeline, and ranking
/// layers.
fn run_repro(jobs: &str, name: &str, extra: &[&str]) -> (String, String) {
    let trace = temp_path(name);
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_repro"));
    cmd.args(["--scale", "small", "--table", "1", "--table", "15"])
        .args(extra)
        .arg("--trace")
        .arg(&trace)
        .env("PHARMAVERIFY_JOBS", jobs)
        .env_remove("PHARMAVERIFY_TRACE")
        .env_remove("PHARMAVERIFY_SCALE");
    let Output {
        status,
        stdout,
        stderr,
    } = cmd.output().expect("repro runs");
    assert!(
        status.success(),
        "repro failed: {}",
        String::from_utf8_lossy(&stderr)
    );
    let rendered = std::fs::read_to_string(&trace).expect("trace file written");
    let _ = std::fs::remove_file(&trace);
    (String::from_utf8(stdout).expect("utf-8 stdout"), rendered)
}

/// Extracts the `"deterministic"` object of a rendered trace, exactly as
/// the obs renderer would (string-aware brace matching).
fn deterministic_view(trace: &str) -> &str {
    let key = "\"deterministic\":";
    let start = trace.find(key).expect("trace has a deterministic section") + key.len();
    let open = start + trace[start..].find('{').expect("object follows the key");
    let bytes = trace.as_bytes();
    let (mut depth, mut in_string, mut escaped) = (0usize, false, false);
    for (i, &b) in bytes[open..].iter().enumerate() {
        if in_string {
            if escaped {
                escaped = false;
            } else if b == b'\\' {
                escaped = true;
            } else if b == b'"' {
                in_string = false;
            }
            continue;
        }
        match b {
            b'"' => in_string = true,
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return &trace[open..=open + i];
                }
            }
            _ => {}
        }
    }
    panic!("unbalanced deterministic section");
}

/// The integer value of `"name": N` inside a deterministic view.
fn counter_value(view: &str, name: &str) -> u64 {
    let key = format!("\"{name}\": ");
    let at = view
        .find(&key)
        .unwrap_or_else(|| panic!("counter {name} missing from trace"));
    view[at + key.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .expect("integer counter value")
}

#[test]
fn deterministic_trace_view_is_identical_across_worker_counts() {
    let (stdout_serial, trace_serial) = run_repro("1", "serial.json", &[]);
    let (stdout_parallel, trace_parallel) = run_repro("4", "parallel.json", &[]);

    assert_eq!(
        stdout_serial, stdout_parallel,
        "report output must not depend on worker count"
    );
    let view_serial = deterministic_view(&trace_serial);
    let view_parallel = deterministic_view(&trace_parallel);
    assert_eq!(
        view_serial, view_parallel,
        "deterministic trace views must be byte-identical across worker counts"
    );
    // The full traces still differ: wall-clock durations live (only) in
    // the non-deterministic section.
    assert_ne!(
        trace_serial, trace_parallel,
        "raw durations should make full traces differ run to run"
    );
    assert!(
        !view_serial.contains("total_micros"),
        "durations leaked into the deterministic view"
    );
    assert!(trace_serial.contains("\"nondeterministic\""));
}

#[test]
fn span_tree_nests_sections_and_stages() {
    let (_, trace) = run_repro("4", "spans.json", &[]);
    let view = deterministic_view(&trace);

    // Hierarchy: report → section → the selected sections, by name.
    let report_at = view.find("\"report\"").expect("report span");
    let section_at = view[report_at..]
        .find("\"section\"")
        .expect("section child")
        + report_at;
    assert!(
        view[section_at..].contains("\"table 1 (datasets)\""),
        "table 1 span must nest under report/section"
    );
    assert!(view[section_at..].contains("\"table 15 (ranking) + outliers\""));

    // Pipeline stages and crawl sites record under their own subtrees,
    // with counts matching the cache-miss counters.
    for stage in ["fold-split", "fitted-tfidf", "trust-scores"] {
        assert_eq!(
            counter_value(view, &format!("pipeline/cache/{stage}/misses")),
            span_count(view, stage),
            "stage span count must equal the miss count for {stage}"
        );
    }
    assert!(view.contains("\"crawl\""));
    assert!(counter_value(view, "crawl/sites") > 0);
    assert!(counter_value(view, "crawl/pages/fetched") > 0);
}

/// Count of the `pipeline/stage/<name>` span in the rendered view: the
/// `"count": N` immediately after the span's key.
fn span_count(view: &str, stage: &str) -> u64 {
    let stage_key = format!("\"{stage}\": {{");
    let pipeline_at = view.find("\"stage\"").expect("pipeline stage subtree");
    let at = view[pipeline_at..]
        .find(&stage_key)
        .unwrap_or_else(|| panic!("no span for stage {stage}"))
        + pipeline_at;
    let count_key = "\"count\": ";
    let count_at = view[at..].find(count_key).expect("span has a count") + at;
    view[count_at + count_key.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .expect("integer span count")
}

#[test]
fn federation_replay_records_tier_counters_and_route_spans() {
    let (_, trace) = run_repro("2", "federation.json", &["--federation", "48"]);
    let view = deterministic_view(&trace);

    // Every request is counted once and routed under its own span.
    assert_eq!(counter_value(view, "serve/federation/requests"), 48);
    let route_at = view.find("\"route\": {").expect("route span in trace");
    let count_key = "\"count\": ";
    let count_at = view[route_at..].find(count_key).expect("route span count") + route_at;
    let routes: u64 = view[count_at + count_key.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .expect("integer route span count");
    assert_eq!(routes, 48, "one serve/federation/route span per request");

    // Each tier leaves a hit-or-fallthrough trail.
    assert!(counter_value(view, "serve/federation/tier/cache/hit") > 0);
    assert!(counter_value(view, "serve/federation/tier/cache/fallthrough") > 0);
    assert!(counter_value(view, "serve/federation/tier/store/fallthrough") > 0);
    assert!(counter_value(view, "serve/federation/tier/fast/error") > 0);
    assert!(counter_value(view, "serve/federation/tier/slow/hit") > 0);
    // Ladder conservation: tier-2 consultations equal tier-1
    // fallthroughs (every cache miss consults the store).
    assert_eq!(
        counter_value(view, "serve/federation/tier/cache/fallthrough"),
        counter_value(view, "serve/federation/tier/store/hit")
            + counter_value(view, "serve/federation/tier/store/fallthrough"),
    );
}

#[test]
fn fault_injection_adds_metrics_without_perturbing_stdout() {
    let (clean_stdout, clean_trace) = run_repro("4", "clean.json", &[]);
    let (fault_stdout, fault_trace) = run_repro("4", "fault.json", &["--fault-rate", "0.2"]);

    assert!(
        fault_stdout.starts_with(&clean_stdout),
        "fault-injected stdout must extend the fault-free output"
    );

    let clean_view = deterministic_view(&clean_trace);
    let fault_view = deterministic_view(&fault_trace);
    assert_ne!(
        clean_view, fault_view,
        "injected faults must leave a metric trail"
    );
    // The clean run records no transient trouble; the faulted run must.
    assert_eq!(
        counter_value(clean_view, "crawl/fetch/failures/transient"),
        0
    );
    assert_eq!(counter_value(clean_view, "crawl/fetch/retries"), 0);
    assert!(
        counter_value(fault_view, "crawl/fetch/retries") > 0,
        "fault injection at rate 0.2 should force retries"
    );
    assert!(
        counter_value(fault_view, "crawl/backoff/virtual_ms")
            > counter_value(clean_view, "crawl/backoff/virtual_ms"),
        "retries must accumulate virtual backoff"
    );
    // The crawl counter *keys* are identical either way — telemetry
    // publishing touches every key even at zero, so only values move and
    // clean vs faulted traces stay structurally comparable.
    fn crawl_keys(view: &str) -> Vec<&str> {
        view.lines()
            .filter_map(|l| l.trim_start().strip_prefix("\"crawl/")?.split('"').next())
            .collect()
    }
    assert_eq!(
        crawl_keys(clean_view),
        crawl_keys(fault_view),
        "fault injection must not add or remove crawl metric keys"
    );
}

#[test]
fn trace_env_variable_writes_the_same_trace() {
    let trace_flag = temp_path("env-flag.json");
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["--scale", "small", "--table", "2"])
        .env("PHARMAVERIFY_JOBS", "2")
        .env("PHARMAVERIFY_TRACE", &trace_flag)
        .env_remove("PHARMAVERIFY_SCALE")
        .output()
        .expect("repro runs");
    assert!(out.status.success());
    let trace = std::fs::read_to_string(&trace_flag).expect("env-named trace written");
    let _ = std::fs::remove_file(&trace_flag);
    assert!(trace.contains("\"deterministic\""));
    assert!(trace.contains("\"nondeterministic\""));
}
