//! Per-feature standardization (z-scoring).
//!
//! The MLP standardizes its inputs before training, as Weka's
//! `MultilayerPerceptron` does by default; the fitted scaler is part of
//! the model so that test instances are transformed identically.

use crate::dataset::Dataset;

/// A fitted per-feature standardizer.
#[derive(Debug, Clone)]
pub struct Scaler {
    mean: Vec<f64>,
    std: Vec<f64>,
}

impl Scaler {
    /// Fits means and standard deviations on the training features.
    /// Constant features get σ = 1 so they map to exactly 0.
    pub fn fit(data: &Dataset) -> Self {
        let dim = data.dim();
        let n = data.len().max(1) as f64;
        let mut mean = vec![0.0; dim];
        let mut sum_sq = vec![0.0; dim];
        for (x, _) in data.iter() {
            for (i, v) in x.iter() {
                mean[i as usize] += v;
                sum_sq[i as usize] += v * v;
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        let std = sum_sq
            .iter()
            .zip(&mean)
            .map(|(&sq, &m)| {
                let var = (sq / n - m * m).max(0.0);
                let s = var.sqrt();
                if s < 1e-12 {
                    1.0
                } else {
                    s
                }
            })
            .collect();
        Scaler { mean, std }
    }

    /// Number of features the scaler was fitted on.
    pub fn dim(&self) -> usize {
        self.mean.len()
    }

    /// Standardizes a dense vector in place.
    ///
    /// # Panics
    /// Panics if `dense.len() != self.dim()`.
    pub fn transform_dense(&self, dense: &mut [f64]) {
        assert_eq!(dense.len(), self.dim(), "dimensionality mismatch");
        for (j, v) in dense.iter_mut().enumerate() {
            *v = (*v - self.mean[j]) / self.std[j];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pharmaverify_text::SparseVector;

    fn data() -> Dataset {
        let mut d = Dataset::new(2);
        d.push(SparseVector::from_pairs(vec![(0, 2.0), (1, 5.0)]), true);
        d.push(SparseVector::from_pairs(vec![(0, 4.0), (1, 5.0)]), false);
        d
    }

    #[test]
    fn standardizes_to_zero_mean_unit_variance() {
        let scaler = Scaler::fit(&data());
        let mut a = vec![2.0, 5.0];
        let mut b = vec![4.0, 5.0];
        scaler.transform_dense(&mut a);
        scaler.transform_dense(&mut b);
        assert!((a[0] + 1.0).abs() < 1e-12);
        assert!((b[0] - 1.0).abs() < 1e-12);
        // Constant feature maps to 0 without dividing by zero.
        assert_eq!(a[1], 0.0);
        assert_eq!(b[1], 0.0);
    }

    #[test]
    fn sparse_zeros_participate_in_statistics() {
        let mut d = Dataset::new(1);
        d.push(SparseVector::from_pairs(vec![(0, 3.0)]), true);
        d.push(SparseVector::new(), false); // implicit 0.0
        let scaler = Scaler::fit(&d);
        let mut v = vec![1.5]; // the mean
        scaler.transform_dense(&mut v);
        assert!(v[0].abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "dimensionality mismatch")]
    fn wrong_dim_panics() {
        let scaler = Scaler::fit(&data());
        scaler.transform_dense(&mut [1.0]);
    }
}
