//! Hybrid naive Bayes: Gaussian class-conditionals for continuous
//! features, Bernoulli class-conditionals for designated binary features.
//!
//! Motivation: graph-propagation features are often *semi-degenerate* —
//! e.g. "distrust received" is exactly zero for one class and positive
//! for part of the other. A Gaussian model of such a feature collapses to
//! a near-point mass whose density spike at zero overwhelms every other
//! feature; a Bernoulli model of the indicator `value > 0` captures the
//! transferable part of the signal with Laplace-smoothed, bounded
//! log-odds.

use crate::dataset::Dataset;
use crate::gaussian_nb::GaussianNaiveBayes;
use crate::{Learner, Model};
use pharmaverify_text::SparseVector;
use std::collections::BTreeSet;

/// Learner configuration for the hybrid naive Bayes.
#[derive(Debug, Clone, Default)]
pub struct HybridNaiveBayes {
    /// Feature indices modelled as Bernoulli indicators (`value > 0`).
    /// All other features are modelled as Gaussians.
    pub binary_features: BTreeSet<u32>,
    /// Configuration of the Gaussian part.
    pub gaussian: GaussianNaiveBayes,
}

impl HybridNaiveBayes {
    /// Creates a hybrid learner with the given binary feature set.
    pub fn new(binary_features: impl IntoIterator<Item = u32>) -> Self {
        HybridNaiveBayes {
            binary_features: binary_features.into_iter().collect(),
            gaussian: GaussianNaiveBayes::default(),
        }
    }
}

/// A fitted hybrid model: a Gaussian NB over the continuous coordinates
/// plus per-class Bernoulli rates for the binary coordinates.
pub struct HybridNbModel {
    /// Gaussian sub-model, fitted on the continuous feature subspace
    /// (binary coordinates zeroed out so they contribute identically to
    /// both classes).
    gaussian: Box<dyn Model>,
    binary_features: Vec<u32>,
    /// `(log P(1 | +), log P(0 | +), log P(1 | −), log P(0 | −))` per
    /// binary feature, Laplace-smoothed.
    bernoulli: Vec<(f64, f64, f64, f64)>,
}

/// Removes the binary coordinates from an instance, leaving the Gaussian
/// sub-model a consistent view.
fn strip_binary(x: &SparseVector, binary: &[u32]) -> SparseVector {
    x.iter()
        .filter(|(i, _)| binary.binary_search(i).is_err())
        .collect()
}

impl Learner for HybridNaiveBayes {
    fn fit(&self, data: &Dataset) -> Box<dyn Model> {
        assert!(!data.is_empty(), "cannot fit hybrid NB on an empty dataset");
        let binary: Vec<u32> = self.binary_features.iter().copied().collect();
        // Gaussian part on the stripped instances.
        let mut continuous = Dataset::new(data.dim());
        for (x, y) in data.iter() {
            continuous.push(strip_binary(x, &binary), y);
        }
        let gaussian = self.gaussian.fit(&continuous);
        // Bernoulli part.
        let n_pos = data.count_positive() as f64;
        let n_neg = data.count_negative() as f64;
        let bernoulli = binary
            .iter()
            .map(|&f| {
                let ones_pos = data.iter().filter(|&(x, y)| y && x.get(f) > 0.0).count() as f64;
                let ones_neg = data.iter().filter(|&(x, y)| !y && x.get(f) > 0.0).count() as f64;
                let p1_pos = (ones_pos + 1.0) / (n_pos + 2.0);
                let p1_neg = (ones_neg + 1.0) / (n_neg + 2.0);
                (
                    p1_pos.ln(),
                    (1.0 - p1_pos).ln(),
                    p1_neg.ln(),
                    (1.0 - p1_neg).ln(),
                )
            })
            .collect();
        Box::new(HybridNbModel {
            gaussian,
            binary_features: binary,
            bernoulli,
        })
    }

    fn name(&self) -> &'static str {
        "HybridNB"
    }
}

impl Model for HybridNbModel {
    fn score(&self, x: &SparseVector) -> f64 {
        // The Gaussian sub-model already returns a posterior; recover its
        // log-odds, add the Bernoulli log-odds, and squash back.
        let stripped = strip_binary(x, &self.binary_features);
        let p = self.gaussian.score(&stripped).clamp(1e-12, 1.0 - 1e-12);
        let mut log_odds = (p / (1.0 - p)).ln();
        for (&f, &(l1p, l0p, l1n, l0n)) in self.binary_features.iter().zip(&self.bernoulli) {
            if x.get(f) > 0.0 {
                log_odds += l1p - l1n;
            } else {
                log_odds += l0p - l0n;
            }
        }
        1.0 / (1.0 + (-log_odds).exp())
    }

    fn is_probabilistic(&self) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "HybridNB"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(pairs: &[(u32, f64)]) -> SparseVector {
        SparseVector::from_pairs(pairs.to_vec())
    }

    /// Feature 0 continuous (separating), feature 1 binary where the
    /// negative class is a point mass at 1 and the positive at 0.
    fn toy() -> Dataset {
        let mut d = Dataset::new(2);
        for x in [0.8, 0.9, 1.0] {
            d.push(v(&[(0, x)]), true); // binary feature 0
        }
        for x in [0.1, 0.2, 0.15, 0.25] {
            d.push(v(&[(0, x), (1, 1.0)]), false);
        }
        d
    }

    #[test]
    fn point_mass_binary_feature_does_not_dominate() {
        let learner = HybridNaiveBayes::new([1]);
        let model = learner.fit(&toy());
        // A positive-looking instance with the binary bit unset stays
        // positive; with the bit set, evidence shifts but stays bounded.
        assert!(model.predict(&v(&[(0, 0.9)])));
        let without = model.score(&v(&[(0, 0.9)]));
        let with = model.score(&v(&[(0, 0.9), (1, 1.0)]));
        assert!(with < without, "bit must push toward negative");
        assert!(with > 0.01, "Bernoulli evidence must be bounded: {with}");
    }

    #[test]
    fn gaussian_part_unaffected_by_binary_column() {
        // With no binary features declared, behaves as Gaussian NB.
        let plain = GaussianNaiveBayes::default().fit(&toy());
        let hybrid = HybridNaiveBayes::new([]).fit(&toy());
        let probe = v(&[(0, 0.5)]);
        assert!((plain.score(&probe) - hybrid.score(&probe)).abs() < 1e-9);
    }

    #[test]
    fn scores_are_probabilities() {
        let model = HybridNaiveBayes::new([1]).fit(&toy());
        for x in [
            v(&[]),
            v(&[(0, 0.9)]),
            v(&[(1, 1.0)]),
            v(&[(0, 0.1), (1, 1.0)]),
        ] {
            let s = model.score(&x);
            assert!((0.0..=1.0).contains(&s), "score {s}");
        }
        assert!(model.is_probabilistic());
    }

    #[test]
    fn bernoulli_rates_are_laplace_smoothed() {
        // Even when one class never shows the bit, the other class's
        // instances with the bit set are not assigned -inf evidence.
        let model = HybridNaiveBayes::new([1]).fit(&toy());
        let s = model.score(&v(&[(0, 1.0), (1, 1.0)]));
        assert!(s.is_finite());
        assert!(s > 0.0);
    }
}
