//! Multinomial naive Bayes (the paper's NBM).
//!
//! The classifier of §5: `P(c | d) ∝ P(c) · Π P(tₖ | c)`, with Laplace
//! smoothing of the per-class term distributions. Feature values are term
//! weights (raw counts or TF-IDF); they must be non-negative and are used
//! as (possibly fractional) occurrence counts, exactly as Weka's
//! `NaiveBayesMultinomial` treats weighted instances.

use crate::dataset::Dataset;
use crate::{Learner, Model};
use pharmaverify_text::SparseVector;

/// Learner configuration for multinomial naive Bayes.
#[derive(Debug, Clone, Copy)]
pub struct MultinomialNaiveBayes {
    /// Additive (Laplace) smoothing constant; Weka uses 1.
    pub alpha: f64,
}

impl Default for MultinomialNaiveBayes {
    fn default() -> Self {
        MultinomialNaiveBayes { alpha: 1.0 }
    }
}

/// A fitted multinomial naive Bayes model.
#[derive(Debug, Clone)]
pub struct NbmModel {
    log_prior_pos: f64,
    log_prior_neg: f64,
    log_cond_pos: Vec<f64>,
    log_cond_neg: Vec<f64>,
}

impl Learner for MultinomialNaiveBayes {
    fn fit(&self, data: &Dataset) -> Box<dyn Model> {
        assert!(!data.is_empty(), "cannot fit NBM on an empty dataset");
        let dim = data.dim();
        let mut mass_pos = vec![0.0; dim];
        let mut mass_neg = vec![0.0; dim];
        let mut n_pos = 0usize;
        for (x, y) in data.iter() {
            let mass = if y {
                n_pos += 1;
                &mut mass_pos
            } else {
                &mut mass_neg
            };
            for (i, v) in x.iter() {
                assert!(v >= 0.0, "NBM requires non-negative feature values");
                mass[i as usize] += v;
            }
        }
        let n = data.len() as f64;
        // Laplace-smoothed priors keep single-class training sets finite.
        let prior_pos = (n_pos as f64 + 1.0) / (n + 2.0);
        let total_pos: f64 = mass_pos.iter().sum::<f64>() + self.alpha * dim as f64;
        let total_neg: f64 = mass_neg.iter().sum::<f64>() + self.alpha * dim as f64;
        let log_cond = |mass: &[f64], total: f64| -> Vec<f64> {
            mass.iter()
                .map(|&m| ((m + self.alpha) / total).ln())
                .collect()
        };
        Box::new(NbmModel {
            log_prior_pos: prior_pos.ln(),
            log_prior_neg: (1.0 - prior_pos).ln(),
            log_cond_pos: log_cond(&mass_pos, total_pos),
            log_cond_neg: log_cond(&mass_neg, total_neg),
        })
    }

    fn name(&self) -> &'static str {
        "NBM"
    }
}

impl NbmModel {
    fn log_likelihoods(&self, x: &SparseVector) -> (f64, f64) {
        let mut ll_pos = self.log_prior_pos;
        let mut ll_neg = self.log_prior_neg;
        for (i, v) in x.iter() {
            let i = i as usize;
            if i < self.log_cond_pos.len() {
                ll_pos += v * self.log_cond_pos[i];
                ll_neg += v * self.log_cond_neg[i];
            }
        }
        (ll_pos, ll_neg)
    }
}

impl Model for NbmModel {
    fn score(&self, x: &SparseVector) -> f64 {
        let (ll_pos, ll_neg) = self.log_likelihoods(x);
        // Exact two-class posterior, computed stably.
        1.0 / (1.0 + (ll_neg - ll_pos).exp())
    }

    fn is_probabilistic(&self) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "NBM"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(pairs: &[(u32, f64)]) -> SparseVector {
        SparseVector::from_pairs(pairs.to_vec())
    }

    /// Tiny vocabulary: 0 = "viagra", 1 = "refill", 2 = "pharmacy".
    fn toy() -> Dataset {
        let mut d = Dataset::new(3);
        d.push(v(&[(1, 3.0), (2, 1.0)]), true);
        d.push(v(&[(1, 2.0), (2, 2.0)]), true);
        d.push(v(&[(0, 4.0), (2, 1.0)]), false);
        d.push(v(&[(0, 3.0)]), false);
        d.push(v(&[(0, 2.0), (2, 1.0)]), false);
        d
    }

    #[test]
    fn separates_toy_classes() {
        let model = MultinomialNaiveBayes::default().fit(&toy());
        assert!(model.predict(&v(&[(1, 2.0)])));
        assert!(!model.predict(&v(&[(0, 3.0)])));
    }

    #[test]
    fn scores_are_probabilities() {
        let model = MultinomialNaiveBayes::default().fit(&toy());
        for x in [v(&[(0, 1.0)]), v(&[(1, 1.0)]), v(&[]), v(&[(2, 5.0)])] {
            let s = model.score(&x);
            assert!((0.0..=1.0).contains(&s), "score {s} out of range");
        }
        assert!(model.is_probabilistic());
    }

    #[test]
    fn empty_vector_falls_back_to_prior() {
        let model = MultinomialNaiveBayes::default().fit(&toy());
        // Priors: pos (2+1)/(5+2) vs neg (3+1)/(5+2) → negative wins.
        assert!(model.score(&v(&[])) < 0.5);
    }

    #[test]
    fn more_evidence_moves_score_monotonically() {
        let model = MultinomialNaiveBayes::default().fit(&toy());
        let weak = model.score(&v(&[(0, 1.0)]));
        let strong = model.score(&v(&[(0, 5.0)]));
        assert!(strong < weak, "more 'viagra' mass must lower the score");
    }

    #[test]
    fn unseen_feature_indices_ignored() {
        // Model fitted on dim 3; vector from a wider space is tolerated.
        let model = MultinomialNaiveBayes::default().fit(&toy());
        let s = model.score(&v(&[(10, 4.0)]));
        assert!((0.0..=1.0).contains(&s));
    }

    #[test]
    fn single_class_training_is_finite() {
        let mut d = Dataset::new(2);
        d.push(v(&[(0, 1.0)]), false);
        d.push(v(&[(1, 1.0)]), false);
        let model = MultinomialNaiveBayes::default().fit(&d);
        let s = model.score(&v(&[(0, 1.0)]));
        assert!(s.is_finite());
        assert!(s < 0.5);
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_dataset_panics() {
        MultinomialNaiveBayes::default().fit(&Dataset::new(2));
    }
}
