//! Evaluation measures (§6.2 of the paper).
//!
//! The positive class is *legitimate*, the negative class *illegitimate*.
//! Because the classes are strongly imbalanced (12% vs 88%), the paper
//! evaluates per-class precision/recall and AUC-ROC alongside overall
//! accuracy, plus *pairwise orderedness* for the ranking problem.

use crate::roc::auc_from_scores;

/// A binary confusion matrix.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConfusionMatrix {
    /// Positive instances predicted positive.
    pub tp: usize,
    /// Negative instances predicted negative.
    pub tn: usize,
    /// Negative instances predicted positive.
    pub fp: usize,
    /// Positive instances predicted negative.
    pub fn_: usize,
}

impl ConfusionMatrix {
    /// Builds a confusion matrix from parallel label/prediction slices.
    ///
    /// # Panics
    /// Panics if the slices differ in length.
    pub fn from_predictions(labels: &[bool], predictions: &[bool]) -> Self {
        assert_eq!(labels.len(), predictions.len(), "length mismatch");
        let mut m = ConfusionMatrix::default();
        for (&y, &p) in labels.iter().zip(predictions) {
            match (y, p) {
                (true, true) => m.tp += 1,
                (true, false) => m.fn_ += 1,
                (false, true) => m.fp += 1,
                (false, false) => m.tn += 1,
            }
        }
        m
    }

    /// Adds another matrix's counts (for pooling CV folds).
    pub fn merge(&mut self, other: &ConfusionMatrix) {
        self.tp += other.tp;
        self.tn += other.tn;
        self.fp += other.fp;
        self.fn_ += other.fn_;
    }

    /// Total number of instances.
    pub fn total(&self) -> usize {
        self.tp + self.tn + self.fp + self.fn_
    }

    /// Overall accuracy `(TP + TN) / total`; 0 on an empty matrix.
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        (self.tp + self.tn) as f64 / total as f64
    }

    /// Precision and recall of the positive (legitimate) class.
    pub fn positive(&self) -> ClassMetrics {
        ClassMetrics::from_counts(self.tp, self.fp, self.fn_)
    }

    /// Precision and recall of the negative (illegitimate) class.
    pub fn negative(&self) -> ClassMetrics {
        ClassMetrics::from_counts(self.tn, self.fn_, self.fp)
    }

    /// False positive rate `FP / (FP + TN)`, as used by the ROC curve.
    pub fn false_positive_rate(&self) -> f64 {
        let negatives = self.fp + self.tn;
        if negatives == 0 {
            0.0
        } else {
            self.fp as f64 / negatives as f64
        }
    }

    /// True positive rate `TP / (TP + FN)` (= positive recall).
    pub fn true_positive_rate(&self) -> f64 {
        self.positive().recall
    }
}

/// Per-class precision/recall/F1.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ClassMetrics {
    /// Fraction of predicted members that truly belong to the class.
    pub precision: f64,
    /// Fraction of true members recovered.
    pub recall: f64,
    /// Harmonic mean of precision and recall.
    pub f1: f64,
}

impl ClassMetrics {
    fn from_counts(true_hits: usize, false_hits: usize, misses: usize) -> Self {
        let precision = ratio(true_hits, true_hits + false_hits);
        let recall = ratio(true_hits, true_hits + misses);
        let f1 = if precision + recall == 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };
        ClassMetrics {
            precision,
            recall,
            f1,
        }
    }
}

fn ratio(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// The full per-experiment measurement set reported in the paper's tables.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EvalSummary {
    /// Overall accuracy (Tables 3, 7, 12, 14).
    pub accuracy: f64,
    /// Legitimate-class metrics (Tables 4, 8, 13, 14).
    pub legitimate: ClassMetrics,
    /// Illegitimate-class metrics (Tables 5, 9, 13, 14).
    pub illegitimate: ClassMetrics,
    /// Area under the ROC curve (Tables 6, 10, 12, 14, 16).
    pub auc: f64,
}

impl EvalSummary {
    /// Computes every measure from labels, hard predictions, and scores.
    /// AUC falls back to 0.5 when the test set is single-class.
    pub fn compute(labels: &[bool], predictions: &[bool], scores: &[f64]) -> Self {
        let matrix = ConfusionMatrix::from_predictions(labels, predictions);
        EvalSummary {
            accuracy: matrix.accuracy(),
            legitimate: matrix.positive(),
            illegitimate: matrix.negative(),
            auc: auc_from_scores(scores, labels).unwrap_or(0.5),
        }
    }
}

/// Pairwise orderedness (§6.2): the fraction of cross-class pairs in which
/// the legitimate pharmacy outranks the illegitimate one. Ties count as
/// violations, per the paper's `I` function ("an illegitimate pharmacy
/// receives an equal or higher score than a legitimate pharmacy").
///
/// Following the paper, the denominator is the number of *all* unordered
/// pairs `(p, q), p ≠ q`; same-class pairs can never violate.
///
/// Returns `None` when there are fewer than two instances.
pub fn pairwise_orderedness(scores: &[f64], labels: &[bool]) -> Option<f64> {
    assert_eq!(scores.len(), labels.len(), "length mismatch");
    let n = scores.len();
    if n < 2 {
        return None;
    }
    let mut illegit_scores: Vec<f64> = scores
        .iter()
        .zip(labels)
        .filter(|&(_, &l)| !l)
        .map(|(&s, _)| s)
        .collect();
    illegit_scores.sort_unstable_by(f64::total_cmp);
    let mut violations = 0usize;
    for (&s, &l) in scores.iter().zip(labels) {
        if !l {
            continue;
        }
        // Violation: any illegitimate score >= this legitimate score.
        let below = illegit_scores.partition_point(|&x| x < s);
        violations += illegit_scores.len() - below;
    }
    let total_pairs = n * (n - 1) / 2;
    Some((total_pairs - violations) as f64 / total_pairs as f64)
}

/// A mean with a symmetric 95% confidence half-width, used for the fold
/// stability statement of §6.3 ("the confidence intervals for our
/// classifiers are very small").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Sample mean.
    pub mean: f64,
    /// Half-width of the 95% interval (`1.96 · σ/√n`).
    pub half_width: f64,
}

impl ConfidenceInterval {
    /// Computes mean and normal-approximation 95% half-width of `samples`.
    /// Returns `None` on an empty slice; a single sample has zero width.
    pub fn from_samples(samples: &[f64]) -> Option<Self> {
        if samples.is_empty() {
            return None;
        }
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>()
            / if samples.len() > 1 { n - 1.0 } else { 1.0 };
        Some(ConfidenceInterval {
            mean,
            half_width: 1.96 * (var / n).sqrt(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confusion_counts() {
        let labels = [true, true, false, false, false];
        let preds = [true, false, false, false, true];
        let m = ConfusionMatrix::from_predictions(&labels, &preds);
        assert_eq!((m.tp, m.fn_, m.tn, m.fp), (1, 1, 2, 1));
        assert_eq!(m.total(), 5);
        assert!((m.accuracy() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn class_metrics() {
        let m = ConfusionMatrix {
            tp: 8,
            fn_: 2,
            fp: 4,
            tn: 86,
        };
        let pos = m.positive();
        assert!((pos.precision - 8.0 / 12.0).abs() < 1e-12);
        assert!((pos.recall - 0.8).abs() < 1e-12);
        let neg = m.negative();
        assert!((neg.precision - 86.0 / 88.0).abs() < 1e-12);
        assert!((neg.recall - 86.0 / 90.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_metrics_are_zero() {
        let m = ConfusionMatrix::default();
        assert_eq!(m.accuracy(), 0.0);
        assert_eq!(m.positive().precision, 0.0);
        assert_eq!(m.positive().f1, 0.0);
    }

    #[test]
    fn merge_pools_counts() {
        let mut a = ConfusionMatrix {
            tp: 1,
            tn: 2,
            fp: 3,
            fn_: 4,
        };
        a.merge(&a.clone());
        assert_eq!((a.tp, a.tn, a.fp, a.fn_), (2, 4, 6, 8));
    }

    #[test]
    fn perfect_ranking_has_pairord_one() {
        // Legitimate scores strictly above every illegitimate score.
        let scores = [0.9, 0.8, 0.2, 0.1];
        let labels = [true, true, false, false];
        assert_eq!(pairwise_orderedness(&scores, &labels), Some(1.0));
    }

    #[test]
    fn tie_counts_as_violation() {
        let scores = [0.5, 0.5];
        let labels = [true, false];
        // 1 pair, 1 violation.
        assert_eq!(pairwise_orderedness(&scores, &labels), Some(0.0));
    }

    #[test]
    fn single_inversion() {
        // 4 instances → 6 pairs; one cross pair inverted.
        let scores = [0.9, 0.3, 0.4, 0.1];
        let labels = [true, true, false, false];
        let p = pairwise_orderedness(&scores, &labels).unwrap();
        assert!((p - 5.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn all_same_class_is_trivially_ordered() {
        let scores = [0.1, 0.9, 0.5];
        let labels = [false, false, false];
        assert_eq!(pairwise_orderedness(&scores, &labels), Some(1.0));
    }

    #[test]
    fn too_few_instances() {
        assert_eq!(pairwise_orderedness(&[0.5], &[true]), None);
        assert_eq!(pairwise_orderedness(&[], &[]), None);
    }

    #[test]
    fn confidence_interval_basics() {
        let ci = ConfidenceInterval::from_samples(&[0.9, 0.9, 0.9]).unwrap();
        assert!((ci.mean - 0.9).abs() < 1e-12);
        assert_eq!(ci.half_width, 0.0);
        let ci = ConfidenceInterval::from_samples(&[0.8, 1.0]).unwrap();
        assert!((ci.mean - 0.9).abs() < 1e-12);
        assert!(ci.half_width > 0.0);
        assert!(ConfidenceInterval::from_samples(&[]).is_none());
    }

    #[test]
    fn eval_summary_single_class_fold_falls_back_to_half_auc() {
        // A CV fold whose test split drew only illegitimate sites: AUC is
        // undefined (no positive to rank), so compute() reports the
        // chance value instead of poisoning the fold average.
        let labels = [false, false, false];
        let preds = [false, true, false];
        let scores = [0.2, 0.8, 0.4];
        let s = EvalSummary::compute(&labels, &preds, &scores);
        assert_eq!(s.auc, 0.5);
        assert!((s.accuracy - 2.0 / 3.0).abs() < 1e-12);
        // No true positives anywhere → the legitimate class is all zeros.
        assert_eq!(s.legitimate, ClassMetrics::default());
    }

    #[test]
    fn eval_summary_on_empty_prediction_vector() {
        // Empty fold: every measure degrades to its defined zero/chance
        // value rather than dividing by zero.
        let s = EvalSummary::compute(&[], &[], &[]);
        assert_eq!(s.accuracy, 0.0);
        assert_eq!(s.auc, 0.5);
        assert_eq!(s.legitimate, ClassMetrics::default());
        assert_eq!(s.illegitimate, ClassMetrics::default());
    }

    #[test]
    fn pairord_on_fully_sorted_ranking() {
        // Scores already sorted with every legitimate site on top: no
        // cross-class pair is inverted regardless of within-class order.
        let scores = [0.9, 0.8, 0.7, 0.3, 0.2, 0.1];
        let labels = [true, true, true, false, false, false];
        assert_eq!(pairwise_orderedness(&scores, &labels), Some(1.0));
    }

    #[test]
    fn pairord_on_reversed_ranking() {
        // Worst case: every illegitimate site outranks every legitimate
        // one. All 3×3 cross pairs violate out of C(6,2)=15 total pairs.
        let scores = [0.1, 0.2, 0.3, 0.7, 0.8, 0.9];
        let labels = [true, true, true, false, false, false];
        let p = pairwise_orderedness(&scores, &labels).unwrap();
        assert!((p - 6.0 / 15.0).abs() < 1e-12);
    }

    #[test]
    fn eval_summary_end_to_end() {
        let labels = [true, false, false, false];
        let preds = [true, false, false, true];
        let scores = [0.9, 0.1, 0.2, 0.6];
        let s = EvalSummary::compute(&labels, &preds, &scores);
        assert!((s.accuracy - 0.75).abs() < 1e-12);
        assert_eq!(s.legitimate.recall, 1.0);
        assert!((s.legitimate.precision - 0.5).abs() < 1e-12);
        assert_eq!(s.auc, 1.0);
    }
}
