//! Platt scaling: calibrating decision values into probabilities.
//!
//! The paper treats the SVM as non-probabilistic and has it contribute a
//! hard {0, 1} to the ranking score (§5). Weka's SMO optionally fits a
//! logistic on the decision values (Platt 1999) to emit probabilities;
//! this module implements that fit so the ranking ablation can compare
//! hard decisions, raw margins, and calibrated probabilities.
//!
//! The model is `P(y = 1 | f) = 1 / (1 + exp(A·f + B))`, fitted by
//! Newton's method on the regularized log-likelihood with Platt's target
//! smoothing (`t₊ = (N₊ + 1)/(N₊ + 2)`, `t₋ = 1/(N₋ + 2)`).

/// A fitted Platt scaler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlattScaler {
    /// Slope `A` (negative when larger decision values mean positive).
    pub a: f64,
    /// Intercept `B`.
    pub b: f64,
}

impl PlattScaler {
    /// Fits the sigmoid on `(decision value, label)` pairs.
    ///
    /// Returns `None` when either class is absent (the fit is undefined).
    ///
    /// # Panics
    /// Panics if the slices differ in length.
    pub fn fit(decisions: &[f64], labels: &[bool]) -> Option<Self> {
        assert_eq!(decisions.len(), labels.len(), "length mismatch");
        let n_pos = labels.iter().filter(|&&l| l).count();
        let n_neg = labels.len() - n_pos;
        if n_pos == 0 || n_neg == 0 {
            return None;
        }
        // Platt's smoothed targets.
        let t_pos = (n_pos as f64 + 1.0) / (n_pos as f64 + 2.0);
        let t_neg = 1.0 / (n_neg as f64 + 2.0);
        let targets: Vec<f64> = labels
            .iter()
            .map(|&l| if l { t_pos } else { t_neg })
            .collect();

        let mut a = 0.0_f64;
        let mut b = ((n_neg as f64 + 1.0) / (n_pos as f64 + 1.0)).ln();
        const MAX_ITER: usize = 100;
        const SIGMA: f64 = 1e-12; // Hessian ridge
        for _ in 0..MAX_ITER {
            // Gradient and Hessian of the negative log-likelihood.
            let (mut g_a, mut g_b) = (0.0, 0.0);
            let (mut h_aa, mut h_ab, mut h_bb) = (SIGMA, 0.0, SIGMA);
            for (&f, &t) in decisions.iter().zip(&targets) {
                let z = a * f + b;
                // p = P(y=1|f) under the current parameters.
                let p = 1.0 / (1.0 + z.exp());
                // With p = σ(−z): dp/dz = −p(1−p), so dNLL/dz = t − p and
                // d²NLL/dz² = p(1−p) (Lin–Weng–Platt formulation).
                let d1 = t - p;
                let d2 = p * (1.0 - p);
                g_a += f * d1;
                g_b += d1;
                h_aa += f * f * d2;
                h_ab += f * d2;
                h_bb += d2;
            }
            if g_a.abs() < 1e-10 && g_b.abs() < 1e-10 {
                break;
            }
            // Solve the 2×2 Newton system.
            let det = h_aa * h_bb - h_ab * h_ab;
            if det.abs() < 1e-18 {
                break;
            }
            let da = -(h_bb * g_a - h_ab * g_b) / det;
            let db = -(h_aa * g_b - h_ab * g_a) / det;
            a += da;
            b += db;
            if da.abs() < 1e-12 && db.abs() < 1e-12 {
                break;
            }
        }
        Some(PlattScaler { a, b })
    }

    /// The calibrated probability for a decision value.
    pub fn calibrate(&self, decision: f64) -> f64 {
        1.0 / (1.0 + (self.a * decision + self.b).exp())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn separable() -> (Vec<f64>, Vec<bool>) {
        let decisions = vec![2.0, 1.5, 1.0, 0.5, -0.5, -1.0, -1.5, -2.0];
        let labels = vec![true, true, true, true, false, false, false, false];
        (decisions, labels)
    }

    #[test]
    fn calibrated_probabilities_are_monotone() {
        let (d, l) = separable();
        let scaler = PlattScaler::fit(&d, &l).unwrap();
        let probs: Vec<f64> = d.iter().map(|&x| scaler.calibrate(x)).collect();
        for w in probs.windows(2) {
            assert!(w[0] >= w[1], "calibration must preserve order: {probs:?}");
        }
        assert!(probs[0] > 0.5, "strong positive must calibrate high");
        assert!(probs[7] < 0.5, "strong negative must calibrate low");
    }

    #[test]
    fn probabilities_bounded() {
        let (d, l) = separable();
        let scaler = PlattScaler::fit(&d, &l).unwrap();
        for x in [-100.0, -1.0, 0.0, 1.0, 100.0] {
            let p = scaler.calibrate(x);
            assert!((0.0..=1.0).contains(&p), "p = {p}");
        }
    }

    #[test]
    fn single_class_returns_none() {
        assert!(PlattScaler::fit(&[1.0, 2.0], &[true, true]).is_none());
        assert!(PlattScaler::fit(&[], &[]).is_none());
    }

    #[test]
    fn overlapping_classes_stay_soft() {
        // Heavy overlap: calibrated probabilities should hug 0.5 rather
        // than saturate.
        let decisions = vec![0.1, -0.1, 0.05, -0.05, 0.2, -0.2];
        let labels = vec![true, false, false, true, true, false];
        let scaler = PlattScaler::fit(&decisions, &labels).unwrap();
        let p = scaler.calibrate(0.1);
        assert!((0.2..=0.8).contains(&p), "p = {p}");
    }

    #[test]
    fn imbalanced_prior_shifts_intercept() {
        // 1 positive vs 9 negatives at symmetric decisions: the
        // calibrated probability at 0 must be well below 0.5.
        let decisions: Vec<f64> = (0..10).map(|i| if i == 0 { 1.0 } else { -1.0 }).collect();
        let labels: Vec<bool> = (0..10).map(|i| i == 0).collect();
        let scaler = PlattScaler::fit(&decisions, &labels).unwrap();
        assert!(scaler.calibrate(0.0) < 0.5);
    }
}
