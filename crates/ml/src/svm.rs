//! Linear soft-margin SVM.
//!
//! Trained by dual coordinate descent for L2-regularized L1-loss
//! (hinge) SVM — the algorithm behind LIBLINEAR, well suited to the
//! high-dimensional sparse TF-IDF vectors of the text pipeline. The bias
//! term is handled by the standard augmentation trick (an implicit
//! constant feature of value 1).
//!
//! The SVM is not probabilistic (§5: "If the classifier is
//! non-probabilistic, like for example SVM…"); [`Model::score`] returns a
//! logistic squashing of the signed decision value, which preserves the
//! decision boundary at 0.5 and the ranking order of decision values.

use crate::dataset::Dataset;
use crate::{Learner, Model};
use pharmaverify_text::SparseVector;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// SVM training configuration.
#[derive(Debug, Clone, Copy)]
pub struct SvmConfig {
    /// Soft-margin cost parameter `C` (Weka SMO default: 1).
    pub c: f64,
    /// Maximum coordinate-descent epochs over the data.
    pub max_epochs: usize,
    /// Convergence threshold on the maximum projected-gradient violation.
    pub tolerance: f64,
    /// Seed for the per-epoch instance permutation.
    pub seed: u64,
}

impl Default for SvmConfig {
    fn default() -> Self {
        SvmConfig {
            c: 1.0,
            max_epochs: 200,
            tolerance: 1e-4,
            seed: 0x5eed_5eed,
        }
    }
}

/// The linear SVM learner.
#[derive(Debug, Clone, Copy, Default)]
pub struct LinearSvm {
    /// Training configuration.
    pub config: SvmConfig,
}

impl LinearSvm {
    /// Creates a learner with the given configuration.
    pub fn new(config: SvmConfig) -> Self {
        LinearSvm { config }
    }
}

/// A fitted linear SVM.
#[derive(Debug, Clone)]
pub struct SvmModel {
    weights: Vec<f64>,
    bias: f64,
}

impl SvmModel {
    /// The signed decision value `w·x + b`; positive ⇒ legitimate.
    pub fn decision(&self, x: &SparseVector) -> f64 {
        x.dot_dense(&self.weights) + self.bias
    }

    /// The learned weight vector (without the bias).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The learned bias.
    pub fn bias(&self) -> f64 {
        self.bias
    }
}

impl LinearSvm {
    /// Fits and returns the concrete model. Callers needing raw decision
    /// values (e.g. for Platt calibration) use this instead of the
    /// trait's boxed form.
    pub fn fit_svm(&self, data: &Dataset) -> SvmModel {
        fit_impl(&self.config, data)
    }
}

/// The dual-coordinate-descent training loop shared by the trait and
/// concrete entry points.
fn fit_impl(cfg: &SvmConfig, data: &Dataset) -> SvmModel {
    {
        assert!(!data.is_empty(), "cannot fit SVM on an empty dataset");
        let n = data.len();
        let dim = data.dim();
        let y: Vec<f64> = data
            .labels()
            .iter()
            .map(|&l| if l { 1.0 } else { -1.0 })
            .collect();
        // Q_ii = x_i·x_i + 1 (the +1 is the bias augmentation).
        let q_diag: Vec<f64> = data.features().iter().map(|x| x.dot(x) + 1.0).collect();
        let mut alpha = vec![0.0_f64; n];
        let mut w = vec![0.0_f64; dim];
        let mut b = 0.0_f64;
        let mut order: Vec<usize> = (0..n).collect();
        let mut rng = SmallRng::seed_from_u64(cfg.seed);

        for _epoch in 0..cfg.max_epochs {
            order.shuffle(&mut rng);
            let mut max_violation = 0.0_f64;
            for &i in &order {
                let xi = data.x(i);
                let g = y[i] * (xi.dot_dense(&w) + b) - 1.0;
                // Projected gradient for box constraint 0 <= alpha <= C.
                let pg = if alpha[i] <= 0.0 {
                    g.min(0.0)
                } else if alpha[i] >= cfg.c {
                    g.max(0.0)
                } else {
                    g
                };
                max_violation = max_violation.max(pg.abs());
                if pg.abs() < 1e-12 {
                    continue;
                }
                let old = alpha[i];
                let new = (old - g / q_diag[i]).clamp(0.0, cfg.c);
                let delta = (new - old) * y[i];
                if delta != 0.0 {
                    alpha[i] = new;
                    for (j, v) in xi.iter() {
                        w[j as usize] += delta * v;
                    }
                    b += delta; // bias feature has value 1
                }
            }
            if max_violation < cfg.tolerance {
                break;
            }
        }
        SvmModel {
            weights: w,
            bias: b,
        }
    }
}

impl Learner for LinearSvm {
    fn fit(&self, data: &Dataset) -> Box<dyn Model> {
        Box::new(fit_impl(&self.config, data))
    }

    fn name(&self) -> &'static str {
        "SVM"
    }
}

impl Model for SvmModel {
    fn score(&self, x: &SparseVector) -> f64 {
        let d = self.decision(x);
        1.0 / (1.0 + (-d).exp())
    }

    fn is_probabilistic(&self) -> bool {
        false
    }

    fn name(&self) -> &'static str {
        "SVM"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(pairs: &[(u32, f64)]) -> SparseVector {
        SparseVector::from_pairs(pairs.to_vec())
    }

    fn fit(data: &Dataset) -> Box<dyn Model> {
        LinearSvm::default().fit(data)
    }

    /// Linearly separable: positives in the upper-right quadrant.
    fn separable() -> Dataset {
        let mut d = Dataset::new(2);
        for (a, b) in [(1.0, 1.0), (0.9, 0.8), (0.8, 1.1), (1.2, 0.9)] {
            d.push(v(&[(0, a), (1, b)]), true);
        }
        for (a, b) in [(-1.0, -1.0), (-0.8, -0.9), (-1.1, -0.7), (-0.9, -1.2)] {
            d.push(v(&[(0, a), (1, b)]), false);
        }
        d
    }

    #[test]
    fn separates_linear_data() {
        let model = fit(&separable());
        assert!(model.predict(&v(&[(0, 1.0), (1, 1.0)])));
        assert!(!model.predict(&v(&[(0, -1.0), (1, -1.0)])));
    }

    #[test]
    fn decision_sign_matches_score_threshold() {
        let data = separable();
        let learner = LinearSvm::default();
        let boxed = learner.fit(&data);
        for (x, _) in data.iter() {
            let s = boxed.score(x);
            assert_eq!(boxed.predict(x), s >= 0.5);
        }
    }

    #[test]
    fn handles_bias_only_separation() {
        // Both classes on one side of the origin: bias must do the work.
        let mut d = Dataset::new(1);
        for x in [3.0, 3.5, 4.0] {
            d.push(v(&[(0, x)]), true);
        }
        for x in [1.0, 1.5, 2.0] {
            d.push(v(&[(0, x)]), false);
        }
        let model = fit(&d);
        assert!(model.predict(&v(&[(0, 3.8)])));
        assert!(!model.predict(&v(&[(0, 1.2)])));
    }

    #[test]
    fn deterministic_given_seed() {
        let data = separable();
        let m1 = LinearSvm::default().fit(&data);
        let m2 = LinearSvm::default().fit(&data);
        let probe = v(&[(0, 0.3), (1, -0.2)]);
        assert_eq!(m1.score(&probe), m2.score(&probe));
    }

    #[test]
    fn not_probabilistic() {
        let model = fit(&separable());
        assert!(!model.is_probabilistic());
    }

    #[test]
    fn tolerates_overlapping_classes() {
        // Noisy data: one positive deep in negative territory.
        let mut d = separable();
        d.push(v(&[(0, -1.0), (1, -1.0)]), true);
        let model = fit(&d);
        // Bulk structure still learned.
        assert!(model.predict(&v(&[(0, 1.0), (1, 1.0)])));
        assert!(!model.predict(&v(&[(0, -1.2), (1, -0.9)])));
    }

    #[test]
    fn sparse_high_dimensional_input() {
        let mut d = Dataset::new(1000);
        for i in 0..5 {
            d.push(v(&[(i, 1.0), (999, 0.5)]), true);
            d.push(v(&[(500 + i, 1.0)]), false);
        }
        let model = fit(&d);
        assert!(model.predict(&v(&[(2, 1.0), (999, 0.5)])));
        assert!(!model.predict(&v(&[(503, 1.0)])));
    }

    #[test]
    fn fit_svm_matches_boxed_fit() {
        let data = separable();
        let concrete = LinearSvm::default().fit_svm(&data);
        let boxed = LinearSvm::default().fit(&data);
        let probe = v(&[(0, 0.4), (1, 0.6)]);
        assert_eq!(concrete.score(&probe), boxed.score(&probe));
        // Decision values are exposed on the concrete model.
        assert!(concrete.decision(&v(&[(0, 1.0), (1, 1.0)])) > 0.0);
    }

    #[test]
    fn margin_magnitude_orders_confidence() {
        let data = separable();
        let learner = LinearSvm::default();
        let boxed = learner.fit(&data);
        let near = boxed.score(&v(&[(0, 0.1), (1, 0.1)]));
        let far = boxed.score(&v(&[(0, 2.0), (1, 2.0)]));
        assert!(far > near);
    }
}
