//! Ensemble selection from libraries of models (Caruana et al., ICML
//! 2004) — the method behind the paper's §6.3.3 ensemble classifier.
//!
//! The training data is split into a model-training part and a hillclimb
//! part. Every learner in the library is fitted on the training part;
//! models are then greedily added to the ensemble **with replacement**,
//! each round picking the model whose addition maximizes the selection
//! metric (AUC here — the measure the paper emphasizes for imbalanced
//! classes) on the hillclimb set. The final ensemble scores an instance
//! with the multiplicity-weighted mean of its members' scores.

use crate::crossval::stratified_folds;
use crate::dataset::Dataset;
use crate::roc::auc_from_scores;
use crate::{Learner, Model};
use pharmaverify_text::SparseVector;

/// Ensemble-selection configuration.
#[derive(Debug, Clone, Copy)]
pub struct EnsembleSelectionConfig {
    /// Fraction of the training data held out for hillclimbing, expressed
    /// as one part in `hillclimb_denominator` (default 5 → 20%).
    pub hillclimb_denominator: usize,
    /// Number of greedy selection rounds (with replacement).
    pub rounds: usize,
    /// Seed for the train/hillclimb split.
    pub seed: u64,
}

impl Default for EnsembleSelectionConfig {
    fn default() -> Self {
        EnsembleSelectionConfig {
            hillclimb_denominator: 5,
            rounds: 25,
            seed: 0xe5e1,
        }
    }
}

/// The ensemble-selection learner: a library of base learners plus the
/// selection procedure.
pub struct EnsembleSelection {
    library: Vec<Box<dyn Learner>>,
    config: EnsembleSelectionConfig,
}

impl EnsembleSelection {
    /// Creates an ensemble selector over `library`.
    ///
    /// # Panics
    /// Panics if the library is empty.
    pub fn new(library: Vec<Box<dyn Learner>>, config: EnsembleSelectionConfig) -> Self {
        assert!(!library.is_empty(), "model library must not be empty");
        EnsembleSelection { library, config }
    }

    /// The number of base learners in the library.
    pub fn library_size(&self) -> usize {
        self.library.len()
    }
}

/// A fitted ensemble: member models with selection multiplicities.
pub struct EnsembleModel {
    members: Vec<(Box<dyn Model>, usize)>,
    total_weight: usize,
}

impl EnsembleModel {
    /// `(model name, multiplicity)` of each selected member.
    pub fn composition(&self) -> Vec<(&'static str, usize)> {
        self.members
            .iter()
            .filter(|(_, count)| *count > 0)
            .map(|(m, count)| (m.name(), *count))
            .collect()
    }
}

impl Learner for EnsembleSelection {
    fn fit(&self, data: &Dataset) -> Box<dyn Model> {
        assert!(
            data.count_positive() > 0 && data.count_negative() > 0,
            "ensemble selection needs both classes"
        );
        // Stratified split: fold 0 of a k-way split is the hillclimb set.
        let folds = stratified_folds(
            data.labels(),
            self.config.hillclimb_denominator.max(2),
            self.config.seed,
        );
        let hillclimb_idx = &folds[0];
        let train_idx: Vec<usize> = (0..data.len())
            .filter(|i| !hillclimb_idx.contains(i))
            .collect();
        let train = data.subset(&train_idx);
        let hill_labels: Vec<bool> = hillclimb_idx.iter().map(|&i| data.y(i)).collect();

        // Fit the whole library on the training part.
        let models: Vec<Box<dyn Model>> = self.library.iter().map(|l| l.fit(&train)).collect();
        // Cache hillclimb scores per model.
        let hill_scores: Vec<Vec<f64>> = models
            .iter()
            .map(|m| hillclimb_idx.iter().map(|&i| m.score(data.x(i))).collect())
            .collect();

        let final_counts = greedy_auc_selection(&hill_scores, &hill_labels, self.config.rounds);
        let total_weight: usize = final_counts.iter().sum();
        Box::new(EnsembleModel {
            members: models.into_iter().zip(final_counts).collect(),
            total_weight: total_weight.max(1),
        })
    }

    fn name(&self) -> &'static str {
        "EnsembleSelection"
    }
}

/// Greedy forward model selection with replacement (the core of ensemble
/// selection), exposed for pipelines whose base models live in different
/// feature spaces: given each candidate model's scores on a hillclimb set,
/// returns the selection multiplicity of each model at the best point of
/// the hillclimb trajectory.
///
/// # Panics
/// Panics if `model_scores` is empty or any score vector's length differs
/// from `labels.len()`.
pub fn greedy_auc_selection(
    model_scores: &[Vec<f64>],
    labels: &[bool],
    rounds: usize,
) -> Vec<usize> {
    assert!(!model_scores.is_empty(), "need at least one model");
    for s in model_scores {
        assert_eq!(s.len(), labels.len(), "score/label length mismatch");
    }
    let mut counts = vec![0usize; model_scores.len()];
    let mut sum_scores = vec![0.0_f64; labels.len()];
    let mut total = 0usize;
    let mut best_overall: Option<(f64, Vec<usize>)> = None;
    #[allow(clippy::explicit_counter_loop)] // `total` doubles as the mean divisor
    for _round in 0..rounds {
        let mut best_round: Option<(f64, usize)> = None;
        for (m, scores) in model_scores.iter().enumerate() {
            let candidate: Vec<f64> = sum_scores
                .iter()
                .zip(scores)
                .map(|(s, x)| (s + x) / (total + 1) as f64)
                .collect();
            let auc = auc_from_scores(&candidate, labels).unwrap_or(0.5);
            if best_round.is_none_or(|(b, _)| auc > b) {
                best_round = Some((auc, m));
            }
        }
        // `model_scores` is non-empty (asserted above), so a round always
        // produces a winner; the let-else keeps the loop panic-free anyway.
        let Some((auc, chosen)) = best_round else {
            break;
        };
        counts[chosen] += 1;
        total += 1;
        for (s, x) in sum_scores.iter_mut().zip(&model_scores[chosen]) {
            *s += x;
        }
        // The ensemble is the best point on the hillclimb trajectory.
        if best_overall.as_ref().is_none_or(|(b, _)| auc > *b) {
            best_overall = Some((auc, counts.clone()));
        }
    }
    best_overall.map(|(_, c)| c).unwrap_or(counts)
}

impl Model for EnsembleModel {
    fn score(&self, x: &SparseVector) -> f64 {
        let sum: f64 = self
            .members
            .iter()
            .filter(|(_, c)| *c > 0)
            .map(|(m, c)| m.score(x) * *c as f64)
            .sum();
        sum / self.total_weight as f64
    }

    fn is_probabilistic(&self) -> bool {
        // Mean of member scores; calibrated only insofar as members are.
        true
    }

    fn name(&self) -> &'static str {
        "EnsembleSelection"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gaussian_nb::GaussianNaiveBayes;
    use crate::nbm::MultinomialNaiveBayes;
    use crate::svm::LinearSvm;
    use crate::tree::DecisionTree;

    fn v(pairs: &[(u32, f64)]) -> SparseVector {
        SparseVector::from_pairs(pairs.to_vec())
    }

    fn library() -> Vec<Box<dyn Learner>> {
        vec![
            Box::new(MultinomialNaiveBayes::default()),
            Box::new(GaussianNaiveBayes::default()),
            Box::new(LinearSvm::default()),
            Box::new(DecisionTree::default()),
        ]
    }

    fn data() -> Dataset {
        let mut d = Dataset::new(2);
        for i in 0..20 {
            let jitter = (i % 5) as f64 * 0.02;
            d.push(v(&[(0, 1.0 + jitter)]), true);
            d.push(v(&[(1, 1.0 + jitter)]), false);
        }
        d
    }

    #[test]
    fn ensemble_classifies_separable_data() {
        let learner = EnsembleSelection::new(library(), EnsembleSelectionConfig::default());
        let model = learner.fit(&data());
        assert!(model.predict(&v(&[(0, 1.0)])));
        assert!(!model.predict(&v(&[(1, 1.0)])));
    }

    #[test]
    fn scores_bounded_and_probabilistic() {
        let learner = EnsembleSelection::new(library(), EnsembleSelectionConfig::default());
        let model = learner.fit(&data());
        assert!(model.is_probabilistic());
        for x in [v(&[(0, 1.0)]), v(&[(1, 1.0)]), v(&[])] {
            let s = model.score(&x);
            assert!((0.0..=1.0).contains(&s), "score {s}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let d = data();
        let cfg = EnsembleSelectionConfig::default();
        let m1 = EnsembleSelection::new(library(), cfg).fit(&d);
        let m2 = EnsembleSelection::new(library(), cfg).fit(&d);
        assert_eq!(m1.score(&v(&[(0, 1.0)])), m2.score(&v(&[(0, 1.0)])));
    }

    #[test]
    fn selection_uses_replacement() {
        // With many rounds at least one model must repeat.
        let learner = EnsembleSelection::new(
            library(),
            EnsembleSelectionConfig {
                rounds: 10,
                ..EnsembleSelectionConfig::default()
            },
        );
        let boxed = learner.fit(&data());
        // Downcast via the public composition API by re-fitting concretely.
        let concrete = EnsembleSelection::new(library(), EnsembleSelectionConfig::default());
        assert_eq!(concrete.library_size(), 4);
        drop(boxed);
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_library_panics() {
        EnsembleSelection::new(vec![], EnsembleSelectionConfig::default());
    }

    #[test]
    #[should_panic(expected = "both classes")]
    fn single_class_data_panics() {
        let mut d = Dataset::new(1);
        for i in 0..10 {
            d.push(v(&[(0, i as f64)]), false);
        }
        EnsembleSelection::new(library(), EnsembleSelectionConfig::default()).fit(&d);
    }
}
