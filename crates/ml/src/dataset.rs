//! The labelled dataset shared by every learner.
//!
//! Instances are sparse feature vectors with boolean labels; `true` is the
//! positive (legitimate) class. The feature dimensionality is fixed at
//! construction so that dense learners (Gaussian NB, MLP, the decision
//! tree) know how many attributes exist even when no instance realizes
//! the last ones.

use pharmaverify_text::SparseVector;
use std::fmt;

/// Errors from dataset construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatasetError {
    /// An instance references a feature index at or beyond the declared
    /// dimensionality.
    FeatureOutOfRange {
        /// Index of the offending instance.
        instance: usize,
        /// The out-of-range feature index.
        feature: u32,
        /// Declared dimensionality.
        dim: usize,
    },
    /// Features and labels differ in length.
    LengthMismatch {
        /// Number of feature vectors.
        features: usize,
        /// Number of labels.
        labels: usize,
    },
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetError::FeatureOutOfRange {
                instance,
                feature,
                dim,
            } => write!(
                f,
                "instance {instance} has feature index {feature} >= dim {dim}"
            ),
            DatasetError::LengthMismatch { features, labels } => {
                write!(f, "{features} feature vectors but {labels} labels")
            }
        }
    }
}

impl std::error::Error for DatasetError {}

/// A binary-labelled sparse dataset.
#[derive(Debug, Clone, Default)]
pub struct Dataset {
    dim: usize,
    x: Vec<SparseVector>,
    y: Vec<bool>,
}

impl Dataset {
    /// Creates an empty dataset with `dim` features.
    pub fn new(dim: usize) -> Self {
        Dataset {
            dim,
            x: Vec::new(),
            y: Vec::new(),
        }
    }

    /// Builds a dataset from parts, validating shapes.
    pub fn from_parts(
        dim: usize,
        x: Vec<SparseVector>,
        y: Vec<bool>,
    ) -> Result<Self, DatasetError> {
        if x.len() != y.len() {
            return Err(DatasetError::LengthMismatch {
                features: x.len(),
                labels: y.len(),
            });
        }
        for (i, v) in x.iter().enumerate() {
            if let Some(max) = v.max_index() {
                if max as usize >= dim {
                    return Err(DatasetError::FeatureOutOfRange {
                        instance: i,
                        feature: max,
                        dim,
                    });
                }
            }
        }
        Ok(Dataset { dim, x, y })
    }

    /// Appends one instance.
    ///
    /// # Panics
    /// Panics if the instance references a feature index `>= dim`; callers
    /// construct instances from fitted vectorizers, so this is a logic
    /// error, not an input error.
    pub fn push(&mut self, x: SparseVector, y: bool) {
        if let Some(max) = x.max_index() {
            assert!(
                (max as usize) < self.dim,
                "feature index {max} out of range for dim {}",
                self.dim
            );
        }
        self.x.push(x);
        self.y.push(y);
    }

    /// Number of instances.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// True when the dataset has no instances.
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The feature vector of instance `i`.
    pub fn x(&self, i: usize) -> &SparseVector {
        &self.x[i]
    }

    /// The label of instance `i` (`true` = positive/legitimate).
    pub fn y(&self, i: usize) -> bool {
        self.y[i]
    }

    /// All feature vectors.
    pub fn features(&self) -> &[SparseVector] {
        &self.x
    }

    /// All labels.
    pub fn labels(&self) -> &[bool] {
        &self.y
    }

    /// Number of positive instances.
    pub fn count_positive(&self) -> usize {
        self.y.iter().filter(|&&l| l).count()
    }

    /// Number of negative instances.
    pub fn count_negative(&self) -> usize {
        self.len() - self.count_positive()
    }

    /// The dataset restricted to `indices` (in the given order).
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        Dataset {
            dim: self.dim,
            x: indices.iter().map(|&i| self.x[i].clone()).collect(),
            y: indices.iter().map(|&i| self.y[i]).collect(),
        }
    }

    /// Indices of the positive and negative instances, in order.
    pub fn indices_by_class(&self) -> (Vec<usize>, Vec<usize>) {
        let mut pos = Vec::new();
        let mut neg = Vec::new();
        for (i, &label) in self.y.iter().enumerate() {
            if label {
                pos.push(i);
            } else {
                neg.push(i);
            }
        }
        (pos, neg)
    }

    /// Iterates `(features, label)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&SparseVector, bool)> {
        self.x.iter().zip(self.y.iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(pairs: &[(u32, f64)]) -> SparseVector {
        SparseVector::from_pairs(pairs.to_vec())
    }

    #[test]
    fn push_and_query() {
        let mut d = Dataset::new(4);
        d.push(v(&[(0, 1.0)]), true);
        d.push(v(&[(3, 2.0)]), false);
        assert_eq!(d.len(), 2);
        assert_eq!(d.dim(), 4);
        assert!(d.y(0));
        assert!(!d.y(1));
        assert_eq!(d.count_positive(), 1);
        assert_eq!(d.count_negative(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn push_out_of_range_panics() {
        let mut d = Dataset::new(2);
        d.push(v(&[(2, 1.0)]), true);
    }

    #[test]
    fn from_parts_validates() {
        let err = Dataset::from_parts(1, vec![v(&[(5, 1.0)])], vec![true]).unwrap_err();
        assert!(matches!(
            err,
            DatasetError::FeatureOutOfRange { feature: 5, .. }
        ));
        let err = Dataset::from_parts(1, vec![], vec![true]).unwrap_err();
        assert!(matches!(err, DatasetError::LengthMismatch { .. }));
        assert!(Dataset::from_parts(6, vec![v(&[(5, 1.0)])], vec![true]).is_ok());
    }

    #[test]
    fn subset_selects_in_order() {
        let mut d = Dataset::new(2);
        d.push(v(&[(0, 1.0)]), true);
        d.push(v(&[(1, 1.0)]), false);
        d.push(v(&[(0, 2.0)]), true);
        let s = d.subset(&[2, 0]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.x(0).get(0), 2.0);
        assert!(s.y(1));
    }

    #[test]
    fn indices_by_class_partitions() {
        let mut d = Dataset::new(1);
        for (i, &label) in [true, false, false, true].iter().enumerate() {
            d.push(v(&[(0, i as f64)]), label);
        }
        let (pos, neg) = d.indices_by_class();
        assert_eq!(pos, vec![0, 3]);
        assert_eq!(neg, vec![1, 2]);
    }
}
