//! Seeded stratified k-fold cross-validation.
//!
//! The paper evaluates every classifier with 3-fold cross-validation
//! ("two folds were used for training and the third for testing", §6.3.1)
//! and reports per-fold stability via confidence intervals. Stratification
//! keeps the 12/88 class ratio in every fold, which matters with only 167
//! legitimate examples.

use crate::dataset::Dataset;
use crate::metrics::{ConfidenceInterval, EvalSummary};
use crate::sampling::Sampling;
use crate::Learner;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Produces `k` stratified folds: each inner `Vec` holds the *test*
/// indices of one fold. Every index appears in exactly one fold, and each
/// fold approximates the global class ratio.
///
/// # Panics
/// Panics if `k < 2` or `k > labels.len()`.
pub fn stratified_folds(labels: &[bool], k: usize, seed: u64) -> Vec<Vec<usize>> {
    assert!(k >= 2, "need at least 2 folds");
    assert!(k <= labels.len(), "more folds than instances");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut pos: Vec<usize> = (0..labels.len()).filter(|&i| labels[i]).collect();
    let mut neg: Vec<usize> = (0..labels.len()).filter(|&i| !labels[i]).collect();
    pos.shuffle(&mut rng);
    neg.shuffle(&mut rng);
    let mut folds = vec![Vec::new(); k];
    for (pos_in_class, &i) in pos.iter().chain(neg.iter()).enumerate() {
        folds[pos_in_class % k].push(i);
    }
    for fold in &mut folds {
        fold.sort_unstable();
    }
    folds
}

/// A reusable stratified k-fold split: per-fold test indices *and* their
/// precomputed training complements.
///
/// [`stratified_folds`] returns only the test side; every consumer then
/// rebuilt the training side with an `O(n · k)` membership scan per fold.
/// `FoldSplit` does that complement computation once, so the split can be
/// shared as a cached artifact across every pipeline that uses the same
/// `(labels, k, seed)` — the fold assignment is the backbone of the whole
/// evaluation and must be bit-identical everywhere.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FoldSplit {
    test: Vec<Vec<usize>>,
    train: Vec<Vec<usize>>,
}

impl FoldSplit {
    /// Builds the stratified split (see [`stratified_folds`]) and its
    /// training complements. Both sides are in ascending index order.
    ///
    /// # Panics
    /// Panics if `k < 2` or `k > labels.len()` (via [`stratified_folds`]).
    pub fn stratified(labels: &[bool], k: usize, seed: u64) -> FoldSplit {
        let test = stratified_folds(labels, k, seed);
        let n = labels.len();
        let train = test
            .iter()
            .map(|fold| {
                let mut in_test = vec![false; n];
                for &i in fold {
                    in_test[i] = true;
                }
                (0..n).filter(|&i| !in_test[i]).collect()
            })
            .collect();
        FoldSplit { test, train }
    }

    /// Number of folds.
    pub fn k(&self) -> usize {
        self.test.len()
    }

    /// Test indices of fold `f`, ascending.
    pub fn test(&self, f: usize) -> &[usize] {
        &self.test[f]
    }

    /// Training indices of fold `f` (the complement of [`FoldSplit::test`]),
    /// ascending.
    pub fn train(&self, f: usize) -> &[usize] {
        &self.train[f]
    }

    /// All test folds, in fold order.
    pub fn test_folds(&self) -> &[Vec<usize>] {
        &self.test
    }

    /// Iterates `(fold, train indices, test indices)` in fold order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &[usize], &[usize])> {
        self.train
            .iter()
            .zip(&self.test)
            .enumerate()
            .map(|(f, (train, test))| (f, train.as_slice(), test.as_slice()))
    }
}

/// The measurements of one cross-validation fold.
#[derive(Debug, Clone)]
pub struct FoldOutcome {
    /// All summary measures on this fold's test instances.
    pub summary: EvalSummary,
    /// Positive-class scores of the test instances, in test-index order.
    pub scores: Vec<f64>,
    /// True labels of the test instances, in test-index order.
    pub labels: Vec<bool>,
}

/// Aggregated cross-validation results.
#[derive(Debug, Clone)]
pub struct CvOutcome {
    /// Per-fold measurements.
    pub folds: Vec<FoldOutcome>,
}

impl CvOutcome {
    /// The mean of every measure across folds — how the paper's tables
    /// report each configuration.
    pub fn aggregate(&self) -> EvalSummary {
        let n = self.folds.len().max(1) as f64;
        let mut agg = EvalSummary::default();
        for f in &self.folds {
            agg.accuracy += f.summary.accuracy / n;
            agg.auc += f.summary.auc / n;
            agg.legitimate.precision += f.summary.legitimate.precision / n;
            agg.legitimate.recall += f.summary.legitimate.recall / n;
            agg.legitimate.f1 += f.summary.legitimate.f1 / n;
            agg.illegitimate.precision += f.summary.illegitimate.precision / n;
            agg.illegitimate.recall += f.summary.illegitimate.recall / n;
            agg.illegitimate.f1 += f.summary.illegitimate.f1 / n;
        }
        agg
    }

    /// 95% confidence interval of fold accuracy (§6.3's stability check).
    pub fn accuracy_interval(&self) -> Option<ConfidenceInterval> {
        let samples: Vec<f64> = self.folds.iter().map(|f| f.summary.accuracy).collect();
        ConfidenceInterval::from_samples(&samples)
    }

    /// All test scores and labels pooled across folds (every instance of
    /// the dataset appears exactly once) — the input to ranking metrics.
    pub fn pooled(&self) -> (Vec<f64>, Vec<bool>) {
        let mut scores = Vec::new();
        let mut labels = Vec::new();
        for f in &self.folds {
            scores.extend_from_slice(&f.scores);
            labels.extend_from_slice(&f.labels);
        }
        (scores, labels)
    }
}

/// Cross-validation driver for precomputed feature sets.
#[derive(Debug, Clone, Copy)]
pub struct CrossValidation {
    /// Number of folds (paper: 3).
    pub k: usize,
    /// Fold-assignment seed.
    pub seed: u64,
    /// Resampling applied to each training split (never to test data).
    pub sampling: Sampling,
}

impl Default for CrossValidation {
    fn default() -> Self {
        CrossValidation {
            k: 3,
            seed: 0xf01d,
            sampling: Sampling::None,
        }
    }
}

impl CrossValidation {
    /// Runs cross-validation of `learner` over `data`, training folds in
    /// parallel on scoped threads.
    pub fn run(&self, data: &Dataset, learner: &dyn Learner) -> CvOutcome {
        let split = FoldSplit::stratified(data.labels(), self.k, self.seed);
        let split_ref = &split;
        let sampling = self.sampling;
        let seed = self.seed;
        let outcomes: Vec<FoldOutcome> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..split_ref.k())
                .map(|f| {
                    scope.spawn(move || {
                        let obs = pharmaverify_obs::global();
                        let test_idx = split_ref.test(f);
                        let train = sampling.apply(&data.subset(split_ref.train(f)), seed);
                        let model = {
                            // lint:allow(obs-name): learner names are a closed compile-time set of well-formed segments.
                            let _fit = obs.span(&format!("ml/fit/{}", learner.name()));
                            learner.fit(&train)
                        };
                        // lint:allow(obs-name): learner names are a closed compile-time set of well-formed segments.
                        let _predict = obs.span(&format!("ml/predict/{}", learner.name()));
                        let labels: Vec<bool> = test_idx.iter().map(|&i| data.y(i)).collect();
                        let scores: Vec<f64> =
                            test_idx.iter().map(|&i| model.score(data.x(i))).collect();
                        let predictions: Vec<bool> =
                            test_idx.iter().map(|&i| model.predict(data.x(i))).collect();
                        FoldOutcome {
                            summary: EvalSummary::compute(&labels, &predictions, &scores),
                            scores,
                            labels,
                        }
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)))
                .collect()
        });
        CvOutcome { folds: outcomes }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nbm::MultinomialNaiveBayes;
    use pharmaverify_text::SparseVector;

    fn v(pairs: &[(u32, f64)]) -> SparseVector {
        SparseVector::from_pairs(pairs.to_vec())
    }

    fn labels(n_pos: usize, n_neg: usize) -> Vec<bool> {
        (0..n_pos + n_neg).map(|i| i < n_pos).collect()
    }

    #[test]
    fn folds_partition_all_indices() {
        let y = labels(12, 88);
        let folds = stratified_folds(&y, 3, 1);
        let mut all: Vec<usize> = folds.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn folds_are_stratified() {
        let y = labels(12, 88);
        for fold in stratified_folds(&y, 3, 1) {
            let pos = fold.iter().filter(|&&i| y[i]).count();
            assert!((3..=5).contains(&pos), "fold has {pos} positives");
        }
    }

    #[test]
    fn folds_deterministic_per_seed() {
        let y = labels(10, 20);
        assert_eq!(stratified_folds(&y, 3, 7), stratified_folds(&y, 3, 7));
        assert_ne!(stratified_folds(&y, 3, 7), stratified_folds(&y, 3, 8));
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn single_fold_panics() {
        stratified_folds(&labels(2, 2), 1, 0);
    }

    #[test]
    fn fold_split_matches_stratified_folds() {
        let y = labels(12, 88);
        let split = FoldSplit::stratified(&y, 3, 7);
        assert_eq!(split.test_folds(), &stratified_folds(&y, 3, 7)[..]);
        assert_eq!(split.k(), 3);
    }

    #[test]
    fn fold_split_train_is_the_sorted_complement() {
        let y = labels(10, 20);
        let split = FoldSplit::stratified(&y, 3, 1);
        for (f, train, test) in split.iter() {
            let rebuilt: Vec<usize> = (0..y.len()).filter(|i| !test.contains(i)).collect();
            assert_eq!(train, &rebuilt[..], "fold {f}");
            assert!(train.windows(2).all(|w| w[0] < w[1]));
            assert_eq!(train.len() + test.len(), y.len());
        }
    }

    fn separable_dataset() -> Dataset {
        let mut d = Dataset::new(2);
        for i in 0..15 {
            d.push(v(&[(0, 2.0 + (i % 5) as f64 * 0.1)]), true);
            d.push(v(&[(1, 2.0 + (i % 5) as f64 * 0.1)]), false);
            d.push(v(&[(1, 3.0 + (i % 3) as f64 * 0.1)]), false);
        }
        d
    }

    #[test]
    fn cv_on_separable_data_is_accurate() {
        let data = separable_dataset();
        let outcome = CrossValidation::default().run(&data, &MultinomialNaiveBayes::default());
        let agg = outcome.aggregate();
        assert!(agg.accuracy > 0.9, "accuracy = {}", agg.accuracy);
        assert!(agg.auc > 0.9, "auc = {}", agg.auc);
        assert_eq!(outcome.folds.len(), 3);
    }

    #[test]
    fn pooled_covers_every_instance_once() {
        let data = separable_dataset();
        let outcome = CrossValidation::default().run(&data, &MultinomialNaiveBayes::default());
        let (scores, labels) = outcome.pooled();
        assert_eq!(scores.len(), data.len());
        assert_eq!(labels.iter().filter(|&&l| l).count(), data.count_positive());
    }

    #[test]
    fn cv_is_deterministic() {
        let data = separable_dataset();
        let cv = CrossValidation::default();
        let a = cv.run(&data, &MultinomialNaiveBayes::default());
        let b = cv.run(&data, &MultinomialNaiveBayes::default());
        assert_eq!(a.pooled().0, b.pooled().0);
    }

    #[test]
    fn sampling_applies_only_to_training() {
        let data = separable_dataset();
        let cv = CrossValidation {
            sampling: Sampling::Undersample,
            ..CrossValidation::default()
        };
        let outcome = cv.run(&data, &MultinomialNaiveBayes::default());
        // Test instances are untouched: pooled size equals dataset size.
        assert_eq!(outcome.pooled().0.len(), data.len());
    }

    #[test]
    fn accuracy_interval_exists() {
        let data = separable_dataset();
        let outcome = CrossValidation::default().run(&data, &MultinomialNaiveBayes::default());
        let ci = outcome.accuracy_interval().unwrap();
        assert!(ci.mean > 0.8);
        assert!(ci.half_width >= 0.0);
    }
}
