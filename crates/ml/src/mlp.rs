//! Multilayer perceptron (the paper's MLP).
//!
//! A one-hidden-layer network with sigmoid activations, trained by
//! mini-batch-free stochastic gradient descent with momentum — the Weka
//! `MultilayerPerceptron` configuration the paper uses on the 8
//! N-Gram-Graph similarity features (Tables 7–10). Weka's defaults are
//! mirrored where they matter: hidden size `(attributes + classes) / 2`,
//! learning rate 0.3, momentum 0.2, standardized inputs.

use crate::dataset::Dataset;
use crate::scale::Scaler;
use crate::{Learner, Model};
use pharmaverify_text::SparseVector;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;

/// MLP training configuration.
#[derive(Debug, Clone, Copy)]
pub struct MlpConfig {
    /// Hidden-layer width; `None` = Weka's `a` rule,
    /// `(attributes + classes) / 2`, clamped to `[2, 64]`.
    pub hidden: Option<usize>,
    /// SGD learning rate (Weka default 0.3).
    pub learning_rate: f64,
    /// Momentum coefficient (Weka default 0.2).
    pub momentum: f64,
    /// Training epochs (Weka default 500).
    pub epochs: usize,
    /// Weight-initialization and shuffle seed.
    pub seed: u64,
}

impl Default for MlpConfig {
    fn default() -> Self {
        MlpConfig {
            hidden: None,
            learning_rate: 0.3,
            momentum: 0.2,
            epochs: 500,
            seed: 0x11_22_33,
        }
    }
}

/// The MLP learner.
#[derive(Debug, Clone, Copy, Default)]
pub struct Mlp {
    /// Training configuration.
    pub config: MlpConfig,
}

impl Mlp {
    /// Creates a learner with the given configuration.
    pub fn new(config: MlpConfig) -> Self {
        Mlp { config }
    }
}

/// A fitted MLP.
#[derive(Debug, Clone)]
pub struct MlpModel {
    scaler: Scaler,
    // w1[h] is the input→hidden weight row of hidden unit h; b1 its bias.
    w1: Vec<Vec<f64>>,
    b1: Vec<f64>,
    // w2[h] is the hidden→output weight; b2 the output bias.
    w2: Vec<f64>,
    b2: f64,
}

fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z).exp())
}

impl MlpModel {
    fn forward(&self, input: &[f64], hidden_out: &mut Vec<f64>) -> f64 {
        hidden_out.clear();
        for (row, &bias) in self.w1.iter().zip(&self.b1) {
            let z: f64 = row.iter().zip(input).map(|(w, x)| w * x).sum::<f64>() + bias;
            hidden_out.push(sigmoid(z));
        }
        let z: f64 = self
            .w2
            .iter()
            .zip(hidden_out.iter())
            .map(|(w, h)| w * h)
            .sum::<f64>()
            + self.b2;
        sigmoid(z)
    }
}

impl Learner for Mlp {
    fn fit(&self, data: &Dataset) -> Box<dyn Model> {
        assert!(!data.is_empty(), "cannot fit MLP on an empty dataset");
        let cfg = &self.config;
        let dim = data.dim();
        let hidden = cfg.hidden.unwrap_or(((dim + 2) / 2).clamp(2, 64));
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let scaler = Scaler::fit(data);

        // Pre-standardize the training matrix once.
        let inputs: Vec<Vec<f64>> = data
            .features()
            .iter()
            .map(|x| {
                let mut dense = x.to_dense(dim);
                scaler.transform_dense(&mut dense);
                dense
            })
            .collect();
        let targets: Vec<f64> = data
            .labels()
            .iter()
            .map(|&l| if l { 1.0 } else { 0.0 })
            .collect();

        let init = |rng: &mut SmallRng, fan_in: usize| -> f64 {
            let bound = 1.0 / (fan_in as f64).sqrt();
            rng.gen_range(-bound..bound)
        };
        let mut model = MlpModel {
            scaler,
            w1: (0..hidden)
                .map(|_| (0..dim).map(|_| init(&mut rng, dim.max(1))).collect())
                .collect(),
            b1: vec![0.0; hidden],
            w2: (0..hidden).map(|_| init(&mut rng, hidden)).collect(),
            b2: 0.0,
        };
        // Momentum buffers, same shapes as the weights.
        let mut v_w1 = vec![vec![0.0; dim]; hidden];
        let mut v_b1 = vec![0.0; hidden];
        let mut v_w2 = vec![0.0; hidden];
        let mut v_b2 = 0.0;

        let mut order: Vec<usize> = (0..data.len()).collect();
        let mut hidden_out = Vec::with_capacity(hidden);
        for _epoch in 0..cfg.epochs {
            order.shuffle(&mut rng);
            for &i in &order {
                let x = &inputs[i];
                let out = model.forward(x, &mut hidden_out);
                // Cross-entropy loss with sigmoid output: δ_out = out − t.
                let delta_out = out - targets[i];
                for h in 0..hidden {
                    let grad_w2 = delta_out * hidden_out[h];
                    v_w2[h] = cfg.momentum * v_w2[h] - cfg.learning_rate * grad_w2;
                    model.w2[h] += v_w2[h];
                }
                v_b2 = cfg.momentum * v_b2 - cfg.learning_rate * delta_out;
                model.b2 += v_b2;
                for h in 0..hidden {
                    let delta_h = delta_out * model.w2[h] * hidden_out[h] * (1.0 - hidden_out[h]);
                    for j in 0..dim {
                        let grad = delta_h * x[j];
                        v_w1[h][j] = cfg.momentum * v_w1[h][j] - cfg.learning_rate * grad;
                        model.w1[h][j] += v_w1[h][j];
                    }
                    v_b1[h] = cfg.momentum * v_b1[h] - cfg.learning_rate * delta_h;
                    model.b1[h] += v_b1[h];
                }
            }
        }
        Box::new(model)
    }

    fn name(&self) -> &'static str {
        "MLP"
    }
}

impl Model for MlpModel {
    fn score(&self, x: &SparseVector) -> f64 {
        let mut dense = x.to_dense(self.scaler.dim());
        self.scaler.transform_dense(&mut dense);
        let mut hidden_out = Vec::with_capacity(self.w2.len());
        self.forward(&dense, &mut hidden_out)
    }

    fn is_probabilistic(&self) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "MLP"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(pairs: &[(u32, f64)]) -> SparseVector {
        SparseVector::from_pairs(pairs.to_vec())
    }

    fn quick() -> Mlp {
        Mlp::new(MlpConfig {
            epochs: 300,
            ..MlpConfig::default()
        })
    }

    #[test]
    fn learns_linear_boundary() {
        let mut d = Dataset::new(2);
        for (a, b) in [(0.9, 0.8), (0.8, 0.9), (1.0, 1.0), (0.7, 0.9)] {
            d.push(v(&[(0, a), (1, b)]), true);
        }
        for (a, b) in [(0.1, 0.2), (0.2, 0.1), (0.0, 0.0), (0.3, 0.1)] {
            d.push(v(&[(0, a), (1, b)]), false);
        }
        let model = quick().fit(&d);
        assert!(model.predict(&v(&[(0, 0.9), (1, 0.9)])));
        assert!(!model.predict(&v(&[(0, 0.1), (1, 0.1)])));
    }

    #[test]
    fn learns_xor() {
        // The reason to have a hidden layer at all.
        let mut d = Dataset::new(2);
        for _ in 0..4 {
            d.push(v(&[(0, 0.0), (1, 0.0)]), false);
            d.push(v(&[(0, 1.0), (1, 1.0)]), false);
            d.push(v(&[(0, 1.0), (1, 0.0)]), true);
            d.push(v(&[(0, 0.0), (1, 1.0)]), true);
        }
        let model = Mlp::new(MlpConfig {
            hidden: Some(8),
            epochs: 2000,
            ..MlpConfig::default()
        })
        .fit(&d);
        assert!(model.predict(&v(&[(0, 1.0), (1, 0.0)])));
        assert!(model.predict(&v(&[(0, 0.0), (1, 1.0)])));
        assert!(!model.predict(&v(&[(0, 0.0), (1, 0.0)])));
        assert!(!model.predict(&v(&[(0, 1.0), (1, 1.0)])));
    }

    #[test]
    fn deterministic_given_seed() {
        let mut d = Dataset::new(1);
        d.push(v(&[(0, 1.0)]), true);
        d.push(v(&[(0, 0.0)]), false);
        let m1 = quick().fit(&d);
        let m2 = quick().fit(&d);
        assert_eq!(m1.score(&v(&[(0, 0.7)])), m2.score(&v(&[(0, 0.7)])));
    }

    #[test]
    fn outputs_probabilities() {
        let mut d = Dataset::new(1);
        d.push(v(&[(0, 1.0)]), true);
        d.push(v(&[(0, 0.0)]), false);
        let model = quick().fit(&d);
        assert!(model.is_probabilistic());
        for x in [-2.0, 0.0, 0.5, 1.0, 3.0] {
            let s = model.score(&v(&[(0, x)]));
            assert!((0.0..=1.0).contains(&s));
        }
    }

    #[test]
    fn default_hidden_follows_weka_rule() {
        // Indirect check: fitting with dim 8 should not panic and should
        // separate an easy problem.
        let mut d = Dataset::new(8);
        for i in 0..6 {
            let val = if i % 2 == 0 { 1.0 } else { 0.0 };
            d.push(v(&[(0, val), (7, 1.0 - val)]), i % 2 == 0);
        }
        let model = quick().fit(&d);
        assert!(model.predict(&v(&[(0, 1.0)])));
    }
}
