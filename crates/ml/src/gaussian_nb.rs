//! Gaussian naive Bayes (the paper's NB).
//!
//! Models each feature as class-conditionally normal — the classifier the
//! paper applies to the N-Gram-Graph similarity features (Table 7) and to
//! the TrustRank score (§6.3.2, "the Naïve Bayes as the base classifier").
//! A variance floor keeps constant features from producing infinite
//! densities, mirroring Weka's default precision handling.

use crate::dataset::Dataset;
use crate::{Learner, Model};
use pharmaverify_text::SparseVector;

/// Learner configuration for Gaussian naive Bayes.
#[derive(Debug, Clone, Copy)]
pub struct GaussianNaiveBayes {
    /// Minimum per-feature standard deviation, as a fraction of the
    /// feature's global value range (Weka uses `range / (2 · 3)` bins; we
    /// floor σ at `range · this` with an absolute floor of 1e-9).
    pub min_sigma_fraction: f64,
}

impl Default for GaussianNaiveBayes {
    fn default() -> Self {
        GaussianNaiveBayes {
            min_sigma_fraction: 1e-3,
        }
    }
}

/// A fitted Gaussian naive Bayes model.
#[derive(Debug, Clone)]
pub struct GaussianNbModel {
    log_prior_pos: f64,
    log_prior_neg: f64,
    mean_pos: Vec<f64>,
    mean_neg: Vec<f64>,
    sigma_pos: Vec<f64>,
    sigma_neg: Vec<f64>,
}

struct ClassStats {
    mean: Vec<f64>,
    var: Vec<f64>,
    count: usize,
}

fn class_stats(data: &Dataset, class: bool) -> ClassStats {
    let dim = data.dim();
    let mut sum = vec![0.0; dim];
    let mut sum_sq = vec![0.0; dim];
    let mut count = 0usize;
    for (x, y) in data.iter() {
        if y != class {
            continue;
        }
        count += 1;
        for (i, v) in x.iter() {
            sum[i as usize] += v;
            sum_sq[i as usize] += v * v;
        }
    }
    let n = count.max(1) as f64;
    let mean: Vec<f64> = sum.iter().map(|&s| s / n).collect();
    let var = sum_sq
        .iter()
        .zip(&mean)
        .map(|(&sq, &m)| (sq / n - m * m).max(0.0))
        .collect();
    ClassStats { mean, var, count }
}

impl Learner for GaussianNaiveBayes {
    fn fit(&self, data: &Dataset) -> Box<dyn Model> {
        assert!(!data.is_empty(), "cannot fit NB on an empty dataset");
        let dim = data.dim();
        let pos = class_stats(data, true);
        let neg = class_stats(data, false);
        // Global per-feature ranges drive the variance floor.
        let mut min_v = vec![f64::INFINITY; dim];
        let mut max_v = vec![f64::NEG_INFINITY; dim];
        for (x, _) in data.iter() {
            let dense = x.to_dense(dim);
            for (j, &v) in dense.iter().enumerate() {
                min_v[j] = min_v[j].min(v);
                max_v[j] = max_v[j].max(v);
            }
        }
        let sigma = |stats: &ClassStats| -> Vec<f64> {
            (0..dim)
                .map(|j| {
                    let range = (max_v[j] - min_v[j]).max(0.0);
                    let floor = (range * self.min_sigma_fraction).max(1e-9);
                    stats.var[j].sqrt().max(floor)
                })
                .collect()
        };
        let n = data.len() as f64;
        let prior_pos = (pos.count as f64 + 1.0) / (n + 2.0);
        Box::new(GaussianNbModel {
            log_prior_pos: prior_pos.ln(),
            log_prior_neg: (1.0 - prior_pos).ln(),
            sigma_pos: sigma(&pos),
            sigma_neg: sigma(&neg),
            mean_pos: pos.mean,
            mean_neg: neg.mean,
        })
    }

    fn name(&self) -> &'static str {
        "NB"
    }
}

fn log_normal_pdf(x: f64, mean: f64, sigma: f64) -> f64 {
    let z = (x - mean) / sigma;
    -0.5 * z * z - sigma.ln() - 0.5 * (2.0 * std::f64::consts::PI).ln()
}

impl Model for GaussianNbModel {
    fn score(&self, x: &SparseVector) -> f64 {
        let dim = self.mean_pos.len();
        let dense = x.to_dense(dim);
        let mut ll_pos = self.log_prior_pos;
        let mut ll_neg = self.log_prior_neg;
        debug_assert_eq!(dense.len(), dim);
        for (j, &x) in dense.iter().enumerate() {
            ll_pos += log_normal_pdf(x, self.mean_pos[j], self.sigma_pos[j]);
            ll_neg += log_normal_pdf(x, self.mean_neg[j], self.sigma_neg[j]);
        }
        1.0 / (1.0 + (ll_neg - ll_pos).exp())
    }

    fn is_probabilistic(&self) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "NB"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v1(x: f64) -> SparseVector {
        SparseVector::from_pairs(vec![(0, x)])
    }

    /// One feature: positives around 0.9, negatives around 0.1.
    fn toy() -> Dataset {
        let mut d = Dataset::new(1);
        for x in [0.85, 0.9, 0.95] {
            d.push(v1(x), true);
        }
        for x in [0.05, 0.1, 0.15, 0.2] {
            d.push(v1(x), false);
        }
        d
    }

    #[test]
    fn separates_one_dimensional_classes() {
        let model = GaussianNaiveBayes::default().fit(&toy());
        assert!(model.predict(&v1(0.88)));
        assert!(!model.predict(&v1(0.12)));
    }

    #[test]
    fn boundary_is_between_means() {
        let model = GaussianNaiveBayes::default().fit(&toy());
        assert!(model.score(&v1(0.9)) > model.score(&v1(0.5)));
        assert!(model.score(&v1(0.5)) > model.score(&v1(0.1)));
    }

    #[test]
    fn constant_feature_does_not_blow_up() {
        let mut d = Dataset::new(2);
        // Feature 1 is constant 1.0 for everything.
        d.push(SparseVector::from_pairs(vec![(0, 0.9), (1, 1.0)]), true);
        d.push(SparseVector::from_pairs(vec![(0, 0.8), (1, 1.0)]), true);
        d.push(SparseVector::from_pairs(vec![(0, 0.1), (1, 1.0)]), false);
        d.push(SparseVector::from_pairs(vec![(0, 0.2), (1, 1.0)]), false);
        let model = GaussianNaiveBayes::default().fit(&d);
        let s = model.score(&SparseVector::from_pairs(vec![(0, 0.85), (1, 1.0)]));
        assert!(s.is_finite());
        assert!(s > 0.5);
    }

    #[test]
    fn multivariate_separation() {
        let mut d = Dataset::new(2);
        for (a, b) in [(0.9, 0.1), (0.8, 0.2), (0.85, 0.15)] {
            d.push(SparseVector::from_pairs(vec![(0, a), (1, b)]), true);
        }
        for (a, b) in [(0.1, 0.9), (0.2, 0.8), (0.15, 0.85)] {
            d.push(SparseVector::from_pairs(vec![(0, a), (1, b)]), false);
        }
        let model = GaussianNaiveBayes::default().fit(&d);
        assert!(model.predict(&SparseVector::from_pairs(vec![(0, 0.9), (1, 0.1)])));
        assert!(!model.predict(&SparseVector::from_pairs(vec![(0, 0.1), (1, 0.9)])));
    }

    #[test]
    fn probabilistic_and_bounded() {
        let model = GaussianNaiveBayes::default().fit(&toy());
        assert!(model.is_probabilistic());
        for x in [-5.0, 0.0, 0.5, 1.0, 5.0] {
            let s = model.score(&v1(x));
            assert!((0.0..=1.0).contains(&s), "score {s}");
        }
    }

    #[test]
    fn missing_features_treated_as_zero() {
        let model = GaussianNaiveBayes::default().fit(&toy());
        // An empty sparse vector is x = 0.0 → clearly negative territory.
        assert!(!model.predict(&SparseVector::new()));
    }
}
