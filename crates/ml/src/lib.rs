//! Learning substrate for pharmacy verification.
//!
//! The paper trains its classifiers with Weka 3 (§6.3.1); this crate
//! reimplements every model family the evaluation uses, from scratch:
//!
//! * [`nbm`] — multinomial naive Bayes (Weka `NaiveBayesMultinomial`);
//! * [`gaussian_nb`] — Gaussian naive Bayes (Weka `NaiveBayes`);
//! * [`hybrid_nb`] — Gaussian + Bernoulli naive Bayes for feature sets
//!   mixing continuous and binary coordinates;
//! * [`svm`] — linear soft-margin SVM trained by dual coordinate descent;
//! * [`tree`] — a C4.5-style decision tree (Weka `J48`): gain-ratio
//!   splits on numeric attributes with pessimistic-error pruning;
//! * [`mlp`] — a one-hidden-layer perceptron (Weka `MultilayerPerceptron`);
//! * [`ensemble`] — ensemble selection from a library of models
//!   (Caruana et al., ICML 2004), used in §6.3.3.
//!
//! Supporting machinery:
//!
//! * [`calibration`] — Platt scaling of decision values;
//! * [`feature_select`] — information-gain feature selection;
//! * [`dataset`] — the sparse binary-labelled dataset all learners share;
//! * [`sampling`] — random undersampling and SMOTE (§6.1);
//! * [`metrics`] — confusion-matrix measures, pairwise orderedness (§6.2),
//!   and confidence intervals;
//! * [`roc`] — ROC curves and AUC;
//! * [`crossval`] — seeded stratified k-fold cross-validation, run on
//!   scoped threads;
//! * [`scale`] — per-feature standardization.
//!
//! The *positive* class throughout is **legitimate**, matching §6.2.

pub mod calibration;
pub mod crossval;
pub mod dataset;
pub mod ensemble;
pub mod feature_select;
pub mod gaussian_nb;
pub mod hybrid_nb;
pub mod metrics;
pub mod mlp;
pub mod nbm;
pub mod roc;
pub mod sampling;
pub mod scale;
pub mod svm;
pub mod tree;

pub use calibration::PlattScaler;
pub use crossval::{stratified_folds, CrossValidation, CvOutcome, FoldOutcome, FoldSplit};
pub use dataset::{Dataset, DatasetError};
pub use ensemble::{greedy_auc_selection, EnsembleSelection, EnsembleSelectionConfig};
pub use feature_select::{information_gain, project, top_k_features};
pub use gaussian_nb::GaussianNaiveBayes;
pub use hybrid_nb::HybridNaiveBayes;
pub use metrics::{ClassMetrics, ConfidenceInterval, ConfusionMatrix, EvalSummary};
pub use mlp::{Mlp, MlpConfig};
pub use nbm::MultinomialNaiveBayes;
pub use roc::{auc_from_scores, RocCurve};
pub use sampling::{smote, undersample, Sampling};
pub use scale::Scaler;
pub use svm::{LinearSvm, SvmConfig};
pub use tree::{DecisionTree, TreeConfig};

use pharmaverify_text::SparseVector;

/// A fitted binary classifier.
///
/// `score` is the model's confidence in the **positive (legitimate)**
/// class. Probabilistic models return a calibrated probability; margin
/// models (the SVM) return a squashed decision value. In both cases 0.5 is
/// the decision boundary, so `predict` defaults to `score >= 0.5`.
///
/// # Examples
///
/// ```
/// use pharmaverify_ml::{Dataset, Learner, MultinomialNaiveBayes};
/// use pharmaverify_text::SparseVector;
///
/// let mut data = Dataset::new(2);
/// data.push(SparseVector::from_pairs(vec![(0, 3.0)]), true);
/// data.push(SparseVector::from_pairs(vec![(1, 3.0)]), false);
/// let model = MultinomialNaiveBayes::default().fit(&data);
/// assert!(model.predict(&SparseVector::from_pairs(vec![(0, 2.0)])));
/// ```
pub trait Model: Send + Sync {
    /// Confidence in the positive class, in `[0, 1]`.
    fn score(&self, x: &SparseVector) -> f64;

    /// Hard decision: `true` = positive (legitimate).
    fn predict(&self, x: &SparseVector) -> bool {
        self.score(x) >= 0.5
    }

    /// Whether `score` is a calibrated class probability.
    fn is_probabilistic(&self) -> bool;

    /// Short display name (e.g. `"NBM"`).
    fn name(&self) -> &'static str;
}

/// A learning algorithm that produces a [`Model`] from a training set.
pub trait Learner: Send + Sync {
    /// Fits a model. Implementations must be deterministic given the same
    /// dataset (any internal randomness is seeded at construction).
    fn fit(&self, data: &Dataset) -> Box<dyn Model>;

    /// Short display name (e.g. `"SVM"`).
    fn name(&self) -> &'static str;
}

impl Model for Box<dyn Model> {
    fn score(&self, x: &SparseVector) -> f64 {
        (**self).score(x)
    }
    fn predict(&self, x: &SparseVector) -> bool {
        (**self).predict(x)
    }
    fn is_probabilistic(&self) -> bool {
        (**self).is_probabilistic()
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
}
