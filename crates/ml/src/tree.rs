//! C4.5-style decision tree (the paper's J48).
//!
//! Binary gain-ratio splits on numeric attributes (`value <= threshold`
//! vs `>`), a minimum-instances-per-leaf constraint, and C4.5's
//! pessimistic-error ("confidence factor") subtree-replacement pruning —
//! the defaults of Weka's `J48` (`-M 2 -C 0.25`). Subtree raising is not
//! implemented; its effect on these workloads is negligible.
//!
//! Training works on a sparse column index, so the all-zero background of
//! TF-IDF features is never materialized.

use crate::dataset::Dataset;
use crate::{Learner, Model};
use pharmaverify_text::SparseVector;

/// Decision-tree training configuration.
#[derive(Debug, Clone, Copy)]
pub struct TreeConfig {
    /// Minimum instances on each side of a split (Weka `-M`, default 2).
    pub min_leaf: usize,
    /// Pruning confidence factor (Weka `-C`, default 0.25). Smaller prunes
    /// more aggressively. Set to 1.0 to disable pruning.
    pub confidence: f64,
    /// Hard depth cap as a safety net against pathological data.
    pub max_depth: usize,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            min_leaf: 2,
            confidence: 0.25,
            max_depth: 60,
        }
    }
}

/// The C4.5 learner.
#[derive(Debug, Clone, Copy, Default)]
pub struct DecisionTree {
    /// Training configuration.
    pub config: TreeConfig,
}

impl DecisionTree {
    /// Creates a learner with the given configuration.
    pub fn new(config: TreeConfig) -> Self {
        DecisionTree { config }
    }
}

/// A fitted decision tree.
#[derive(Debug, Clone)]
pub struct TreeModel {
    root: Node,
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        pos: f64,
        neg: f64,
    },
    Split {
        feature: u32,
        threshold: f64,
        pos: f64,
        neg: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

impl TreeModel {
    /// Number of leaves in the fitted tree.
    pub fn leaf_count(&self) -> usize {
        fn count(node: &Node) -> usize {
            match node {
                Node::Leaf { .. } => 1,
                Node::Split { left, right, .. } => count(left) + count(right),
            }
        }
        count(&self.root)
    }

    /// Depth of the fitted tree (a single leaf has depth 0).
    pub fn depth(&self) -> usize {
        fn depth(node: &Node) -> usize {
            match node {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + depth(left).max(depth(right)),
            }
        }
        depth(&self.root)
    }
}

/// Binary entropy of a (pos, neg) count pair, in bits.
fn entropy(pos: f64, neg: f64) -> f64 {
    let n = pos + neg;
    if n == 0.0 {
        return 0.0;
    }
    let mut h = 0.0;
    for c in [pos, neg] {
        if c > 0.0 {
            let p = c / n;
            h -= p * p.log2();
        }
    }
    h
}

/// Sparse column-major view of the training matrix.
struct Columns {
    cols: Vec<Vec<(u32, f64)>>,
}

impl Columns {
    fn build(data: &Dataset) -> Self {
        let mut cols = vec![Vec::new(); data.dim()];
        for (i, (x, _)) in data.iter().enumerate() {
            for (f, v) in x.iter() {
                cols[f as usize].push((i as u32, v));
            }
        }
        Columns { cols }
    }
}

struct Builder<'a> {
    data: &'a Dataset,
    columns: Columns,
    config: TreeConfig,
    in_node: Vec<bool>,
}

struct BestSplit {
    feature: u32,
    threshold: f64,
    gain_ratio: f64,
}

impl<'a> Builder<'a> {
    fn new(data: &'a Dataset, config: TreeConfig) -> Self {
        Builder {
            columns: Columns::build(data),
            in_node: vec![false; data.len()],
            data,
            config,
        }
    }

    fn class_counts(&self, indices: &[u32]) -> (f64, f64) {
        let mut pos = 0.0;
        let mut neg = 0.0;
        for &i in indices {
            if self.data.y(i as usize) {
                pos += 1.0;
            } else {
                neg += 1.0;
            }
        }
        (pos, neg)
    }

    fn build_node(&mut self, indices: &[u32], depth: usize) -> Node {
        let (pos, neg) = self.class_counts(indices);
        let leaf = Node::Leaf { pos, neg };
        if pos == 0.0
            || neg == 0.0
            || indices.len() < 2 * self.config.min_leaf
            || depth >= self.config.max_depth
        {
            return leaf;
        }
        let Some(best) = self.find_best_split(indices, pos, neg) else {
            return leaf;
        };
        let (left_idx, right_idx): (Vec<u32>, Vec<u32>) = indices
            .iter()
            .partition(|&&i| self.data.x(i as usize).get(best.feature) <= best.threshold);
        debug_assert!(left_idx.len() >= self.config.min_leaf);
        debug_assert!(right_idx.len() >= self.config.min_leaf);
        let left = self.build_node(&left_idx, depth + 1);
        let right = self.build_node(&right_idx, depth + 1);
        Node::Split {
            feature: best.feature,
            threshold: best.threshold,
            pos,
            neg,
            left: Box::new(left),
            right: Box::new(right),
        }
    }

    // lint:allow(float-eq): grouping *identical* feature values after a
    // sort — exact equality is intended.
    #[allow(clippy::float_cmp)]
    fn find_best_split(&mut self, indices: &[u32], pos: f64, neg: f64) -> Option<BestSplit> {
        let n = indices.len() as f64;
        let parent_entropy = entropy(pos, neg);
        for &i in indices {
            self.in_node[i as usize] = true;
        }
        let mut best: Option<BestSplit> = None;
        let mut nonzero: Vec<(f64, bool)> = Vec::new();
        for (feature, col) in self.columns.cols.iter().enumerate() {
            nonzero.clear();
            for &(i, v) in col {
                if self.in_node[i as usize] {
                    nonzero.push((v, self.data.y(i as usize)));
                }
            }
            if nonzero.is_empty() {
                continue; // feature constant (zero) in this node
            }
            let nnz_pos = nonzero.iter().filter(|&&(_, l)| l).count() as f64;
            let zero_pos = pos - nnz_pos;
            let zero_neg = neg - (nonzero.len() as f64 - nnz_pos);
            nonzero.sort_unstable_by(|a, b| a.0.total_cmp(&b.0));

            // Group by distinct value, inserting the zero group in order.
            let mut groups: Vec<(f64, f64, f64)> = Vec::new(); // (value, pos, neg)
            let mut zero_inserted = zero_pos + zero_neg == 0.0;
            let push_group = |groups: &mut Vec<(f64, f64, f64)>, v: f64, p: f64, ng: f64| {
                match groups.last_mut() {
                    Some(last) if last.0 == v => {
                        last.1 += p;
                        last.2 += ng;
                    }
                    _ => groups.push((v, p, ng)),
                }
            };
            for &(v, label) in &nonzero {
                if !zero_inserted && v > 0.0 {
                    push_group(&mut groups, 0.0, zero_pos, zero_neg);
                    zero_inserted = true;
                }
                let (p, ng) = if label { (1.0, 0.0) } else { (0.0, 1.0) };
                push_group(&mut groups, v, p, ng);
            }
            if !zero_inserted {
                push_group(&mut groups, 0.0, zero_pos, zero_neg);
            }
            if groups.len() < 2 {
                continue;
            }
            // Scan candidate thresholds between consecutive distinct values.
            let mut left_pos = 0.0;
            let mut left_neg = 0.0;
            for w in 0..groups.len() - 1 {
                left_pos += groups[w].1;
                left_neg += groups[w].2;
                let left_n = left_pos + left_neg;
                let right_pos = pos - left_pos;
                let right_neg = neg - left_neg;
                let right_n = right_pos + right_neg;
                if (left_n as usize) < self.config.min_leaf
                    || (right_n as usize) < self.config.min_leaf
                {
                    continue;
                }
                let gain = parent_entropy
                    - (left_n / n) * entropy(left_pos, left_neg)
                    - (right_n / n) * entropy(right_pos, right_neg);
                if gain <= 1e-12 {
                    continue;
                }
                let split_info = entropy(left_n, right_n);
                if split_info <= 1e-12 {
                    continue;
                }
                let gain_ratio = gain / split_info;
                if best.as_ref().is_none_or(|b| gain_ratio > b.gain_ratio) {
                    best = Some(BestSplit {
                        feature: feature as u32,
                        threshold: (groups[w].0 + groups[w + 1].0) / 2.0,
                        gain_ratio,
                    });
                }
            }
        }
        for &i in indices {
            self.in_node[i as usize] = false;
        }
        best
    }
}

/// Inverse of the standard normal CDF (Acklam's rational approximation,
/// relative error < 1.15e-9). Used to turn the pruning confidence factor
/// into a z-value.
fn probit(p: f64) -> f64 {
    assert!((0.0..1.0).contains(&p) && p > 0.0, "probit domain");
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    let p_low = 0.02425;
    if p < p_low {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - p_low {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        -probit(1.0 - p)
    }
}

/// C4.5's `addErrs`: the estimated number of *extra* errors at a leaf with
/// `n` instances and `e` observed errors, at confidence factor `cf`.
fn add_errs(n: f64, e: f64, cf: f64) -> f64 {
    if cf >= 1.0 || n <= 0.0 {
        return 0.0;
    }
    if e < 1e-9 {
        return n * (1.0 - cf.powf(1.0 / n));
    }
    if e + 0.5 >= n {
        return (n - e).max(0.0);
    }
    let z = probit(1.0 - cf);
    let f = (e + 0.5) / n; // C4.5's continuity correction
    let upper = (f + z * z / (2.0 * n) + z * (f / n - f * f / n + z * z / (4.0 * n * n)).sqrt())
        / (1.0 + z * z / n);
    (upper * n - e).max(0.0)
}

/// Pessimistic error estimate of `node` if collapsed to a leaf.
fn leaf_error_estimate(pos: f64, neg: f64, cf: f64) -> f64 {
    let n = pos + neg;
    let e = pos.min(neg);
    e + add_errs(n, e, cf)
}

/// Post-prunes by subtree replacement; returns the node's estimated error.
fn prune(node: Node, cf: f64) -> (Node, f64) {
    match node {
        Node::Leaf { pos, neg } => {
            let est = leaf_error_estimate(pos, neg, cf);
            (Node::Leaf { pos, neg }, est)
        }
        Node::Split {
            feature,
            threshold,
            pos,
            neg,
            left,
            right,
        } => {
            let (left, err_left) = prune(*left, cf);
            let (right, err_right) = prune(*right, cf);
            let subtree_error = err_left + err_right;
            let as_leaf = leaf_error_estimate(pos, neg, cf);
            if as_leaf <= subtree_error + 0.1 {
                (Node::Leaf { pos, neg }, as_leaf)
            } else {
                (
                    Node::Split {
                        feature,
                        threshold,
                        pos,
                        neg,
                        left: Box::new(left),
                        right: Box::new(right),
                    },
                    subtree_error,
                )
            }
        }
    }
}

impl Learner for DecisionTree {
    fn fit(&self, data: &Dataset) -> Box<dyn Model> {
        assert!(!data.is_empty(), "cannot fit a tree on an empty dataset");
        let mut builder = Builder::new(data, self.config);
        let indices: Vec<u32> = (0..data.len() as u32).collect();
        let root = builder.build_node(&indices, 0);
        let (root, _) = if self.config.confidence < 1.0 {
            prune(root, self.config.confidence)
        } else {
            (root, 0.0)
        };
        Box::new(TreeModel { root })
    }

    fn name(&self) -> &'static str {
        "J48"
    }
}

impl Model for TreeModel {
    fn score(&self, x: &SparseVector) -> f64 {
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { pos, neg } => {
                    // Laplace-corrected leaf probability.
                    return (pos + 1.0) / (pos + neg + 2.0);
                }
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                    ..
                } => {
                    node = if x.get(*feature) <= *threshold {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }

    fn is_probabilistic(&self) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "J48"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(pairs: &[(u32, f64)]) -> SparseVector {
        SparseVector::from_pairs(pairs.to_vec())
    }

    fn fit(data: &Dataset) -> Box<dyn Model> {
        DecisionTree::default().fit(data)
    }

    #[test]
    fn splits_on_single_informative_feature() {
        let mut d = Dataset::new(2);
        for x in [0.8, 0.9, 1.0, 0.85] {
            d.push(v(&[(0, x), (1, 0.5)]), true);
        }
        for x in [0.1, 0.2, 0.0, 0.15] {
            d.push(v(&[(0, x), (1, 0.5)]), false);
        }
        let model = fit(&d);
        assert!(model.predict(&v(&[(0, 0.95)])));
        assert!(!model.predict(&v(&[(0, 0.05)])));
    }

    #[test]
    fn zero_background_handled() {
        // Positives have feature 3 set; negatives are empty vectors.
        let mut d = Dataset::new(5);
        for _ in 0..4 {
            d.push(v(&[(3, 1.0)]), true);
            d.push(v(&[]), false);
        }
        let model = fit(&d);
        assert!(model.predict(&v(&[(3, 1.0)])));
        assert!(!model.predict(&v(&[])));
    }

    #[test]
    fn learns_conjunction_with_nested_splits() {
        // Positive iff f0 > 0.5 AND f1 > 0.5 — needs two stacked splits.
        // (XOR is unlearnable for C4.5: both root splits have zero gain.)
        let mut d = Dataset::new(2);
        for _ in 0..3 {
            d.push(v(&[(0, 1.0), (1, 1.0)]), true);
            d.push(v(&[(0, 1.0), (1, 0.0)]), false);
            d.push(v(&[(0, 0.0), (1, 1.0)]), false);
            d.push(v(&[(0, 0.0), (1, 0.0)]), false);
        }
        let model = DecisionTree::new(TreeConfig {
            confidence: 1.0, // keep the full tree
            ..TreeConfig::default()
        })
        .fit(&d);
        assert!(model.predict(&v(&[(0, 1.0), (1, 1.0)])));
        assert!(!model.predict(&v(&[(0, 1.0), (1, 0.0)])));
        assert!(!model.predict(&v(&[(0, 0.0), (1, 1.0)])));
        assert!(!model.predict(&v(&[(0, 0.0), (1, 0.0)])));
    }

    #[test]
    fn pure_node_is_leaf() {
        let mut d = Dataset::new(1);
        for x in [0.1, 0.5, 0.9] {
            d.push(v(&[(0, x)]), false);
        }
        let learner = DecisionTree::default();
        let boxed = learner.fit(&d);
        assert!(!boxed.predict(&v(&[(0, 0.5)])));
        assert!(boxed.score(&v(&[(0, 0.5)])) < 0.5);
    }

    #[test]
    fn min_leaf_respected() {
        // 3 instances: any split would leave a side with < 2 instances.
        let mut d = Dataset::new(1);
        d.push(v(&[(0, 0.0)]), false);
        d.push(v(&[(0, 0.5)]), true);
        d.push(v(&[(0, 1.0)]), false);
        let model = DecisionTree::default().fit(&d);
        // Must be a single leaf → same score everywhere.
        assert_eq!(model.score(&v(&[(0, 0.0)])), model.score(&v(&[(0, 1.0)])));
    }

    #[test]
    fn pruning_collapses_noise_splits() {
        // One strong feature + a noisy irrelevant one. The pruned tree
        // should not be deeper than the unpruned tree.
        let mut d = Dataset::new(2);
        let noise = [0.3, 0.7, 0.4, 0.6, 0.5, 0.55, 0.45, 0.65];
        for (k, &nz) in noise.iter().enumerate() {
            let strong = if k % 2 == 0 { 0.9 } else { 0.1 };
            // One mislabelled instance injects noise.
            let label = if k == 7 { true } else { k % 2 == 0 };
            d.push(v(&[(0, strong), (1, nz)]), label);
        }
        let pruned = DecisionTree::default().fit(&d);
        let full = DecisionTree::new(TreeConfig {
            confidence: 1.0,
            ..TreeConfig::default()
        })
        .fit(&d);
        // Both still classify the strong pattern.
        assert!(pruned.predict(&v(&[(0, 0.9)])));
        assert!(!pruned.predict(&v(&[(0, 0.1), (1, 0.3)])));
        // Smoke check that the unpruned tree exists and agrees.
        assert!(full.predict(&v(&[(0, 0.9)])));
    }

    #[test]
    fn add_errs_properties() {
        // No observed errors still yields a positive pessimistic estimate.
        assert!(add_errs(10.0, 0.0, 0.25) > 0.0);
        // More confidence (larger cf) → smaller correction.
        assert!(add_errs(20.0, 4.0, 0.5) < add_errs(20.0, 4.0, 0.1));
        // cf = 1 disables the correction.
        assert_eq!(add_errs(20.0, 4.0, 1.0), 0.0);
    }

    #[test]
    fn probit_matches_known_quantiles() {
        assert!((probit(0.5)).abs() < 1e-9);
        assert!((probit(0.975) - 1.959964).abs() < 1e-4);
        assert!((probit(0.75) - 0.67448975).abs() < 1e-6);
        assert!((probit(0.025) + 1.959964).abs() < 1e-4);
    }

    #[test]
    fn scores_are_laplace_probabilities() {
        let mut d = Dataset::new(1);
        for x in [0.9, 0.8] {
            d.push(v(&[(0, x)]), true);
        }
        for x in [0.1, 0.2] {
            d.push(v(&[(0, x)]), false);
        }
        let model = fit(&d);
        let s = model.score(&v(&[(0, 0.85)]));
        assert!((0.0..=1.0).contains(&s));
        assert!(model.is_probabilistic());
    }

    #[test]
    fn tree_shape_introspection() {
        let mut d = Dataset::new(1);
        for x in [0.8, 0.9, 1.0, 0.85] {
            d.push(v(&[(0, x)]), true);
        }
        for x in [0.1, 0.2, 0.0, 0.15] {
            d.push(v(&[(0, x)]), false);
        }
        let learner = DecisionTree::default();
        let data_box = learner.fit(&d);
        // Access shape through the concrete type.
        let mut builder = Builder::new(&d, TreeConfig::default());
        let idx: Vec<u32> = (0..d.len() as u32).collect();
        let root = builder.build_node(&idx, 0);
        let model = TreeModel { root };
        assert!(model.leaf_count() >= 2);
        assert!(model.depth() >= 1);
        drop(data_box);
    }
}
