//! Information-gain feature selection.
//!
//! Classic text-classification preprocessing (the paper's related work
//! cites Chakrabarti et al.'s "scalable feature selection" \[7\]): rank
//! features by the information gain of their *presence* indicator with
//! respect to the class, and keep the top k. Used by the
//! vocabulary-size ablation.

use crate::dataset::Dataset;
use pharmaverify_text::SparseVector;

/// Binary entropy in bits.
fn entropy(pos: f64, neg: f64) -> f64 {
    let n = pos + neg;
    if n == 0.0 {
        return 0.0;
    }
    let mut h = 0.0;
    for c in [pos, neg] {
        if c > 0.0 {
            let p = c / n;
            h -= p * p.log2();
        }
    }
    h
}

/// Information gain of each feature's presence indicator (`value > 0`)
/// with respect to the binary label. Returned in feature-index order.
pub fn information_gain(data: &Dataset) -> Vec<f64> {
    let n = data.len() as f64;
    let n_pos = data.count_positive() as f64;
    let n_neg = n - n_pos;
    let parent = entropy(n_pos, n_neg);
    // present[f] = (positives with f, negatives with f)
    let mut present = vec![(0.0_f64, 0.0_f64); data.dim()];
    for (x, y) in data.iter() {
        for (f, v) in x.iter() {
            if v > 0.0 {
                if y {
                    present[f as usize].0 += 1.0;
                } else {
                    present[f as usize].1 += 1.0;
                }
            }
        }
    }
    present
        .into_iter()
        .map(|(p_pos, p_neg)| {
            let p_n = p_pos + p_neg;
            let a_pos = n_pos - p_pos;
            let a_neg = n_neg - p_neg;
            let a_n = a_pos + a_neg;
            if n == 0.0 {
                return 0.0;
            }
            parent - (p_n / n) * entropy(p_pos, p_neg) - (a_n / n) * entropy(a_pos, a_neg)
        })
        .collect()
}

/// Indices of the `k` features with the highest information gain,
/// descending; ties break on the lower index so selection is
/// deterministic.
pub fn top_k_features(data: &Dataset, k: usize) -> Vec<u32> {
    let gains = information_gain(data);
    let mut order: Vec<u32> = (0..data.dim() as u32).collect();
    order.sort_by(|&a, &b| {
        gains[b as usize]
            .total_cmp(&gains[a as usize])
            .then(a.cmp(&b))
    });
    order.truncate(k);
    order.sort_unstable();
    order
}

/// Projects a dataset onto the selected feature subset, remapping the
/// kept features to dense indices `0..keep.len()`.
///
/// # Panics
/// Panics if `keep` is unsorted or references features beyond `dim`.
pub fn project(data: &Dataset, keep: &[u32]) -> Dataset {
    assert!(keep.windows(2).all(|w| w[0] < w[1]), "keep must be sorted");
    if let Some(&max) = keep.last() {
        assert!((max as usize) < data.dim(), "feature {max} out of range");
    }
    let mut out = Dataset::new(keep.len());
    for (x, y) in data.iter() {
        let projected: SparseVector = x
            .iter()
            .filter_map(|(f, v)| {
                keep.binary_search(&f)
                    .ok()
                    .map(|new_idx| (new_idx as u32, v))
            })
            .collect();
        out.push(projected, y);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(pairs: &[(u32, f64)]) -> SparseVector {
        SparseVector::from_pairs(pairs.to_vec())
    }

    /// Feature 0: perfect class indicator; feature 1: constant (zero
    /// gain); feature 2: partially informative (present in both
    /// positives and one negative).
    fn toy() -> Dataset {
        let mut d = Dataset::new(3);
        d.push(v(&[(0, 1.0), (1, 1.0), (2, 1.0)]), true);
        d.push(v(&[(0, 1.0), (1, 1.0), (2, 1.0)]), true);
        d.push(v(&[(1, 1.0)]), false);
        d.push(v(&[(1, 1.0), (2, 1.0)]), false);
        d
    }

    #[test]
    fn perfect_indicator_has_max_gain() {
        let gains = information_gain(&toy());
        assert!((gains[0] - 1.0).abs() < 1e-12, "gains = {gains:?}");
        assert_eq!(gains[1], 0.0);
        assert!(gains[2] < gains[0] && gains[2] >= 0.0);
    }

    #[test]
    fn top_k_selects_informative_features() {
        let top1 = top_k_features(&toy(), 1);
        assert_eq!(top1, vec![0]);
        let top2 = top_k_features(&toy(), 2);
        assert_eq!(top2, vec![0, 2]);
    }

    #[test]
    fn top_k_larger_than_dim_returns_all() {
        assert_eq!(top_k_features(&toy(), 10).len(), 3);
    }

    #[test]
    fn projection_remaps_indices() {
        let data = toy();
        let kept = project(&data, &[0, 2]);
        assert_eq!(kept.dim(), 2);
        assert_eq!(kept.len(), data.len());
        // Old feature 2 is new feature 1.
        assert_eq!(kept.x(0).get(1), 1.0);
        // Old feature 1 is dropped everywhere.
        for i in 0..kept.len() {
            assert!(kept.x(i).max_index().map(|m| m < 2).unwrap_or(true));
        }
    }

    #[test]
    fn projection_preserves_labels() {
        let data = toy();
        let kept = project(&data, &[0]);
        for i in 0..data.len() {
            assert_eq!(kept.y(i), data.y(i));
        }
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_keep_panics() {
        project(&toy(), &[2, 0]);
    }
}
