//! ROC curves and AUC.
//!
//! AUC is computed by the rank statistic (Mann–Whitney U) with midrank
//! tie handling — exactly the probability that a random positive instance
//! is scored above a random negative one, with ties counting half.

/// AUC of `scores` against binary `labels` (`true` = positive).
/// Returns `None` when either class is absent.
///
/// # Panics
/// Panics if the slices differ in length.
// lint:allow(float-eq): tie groups are *identical* scores after a sort;
// bitwise equality is the definition, not an approximation gone wrong.
#[allow(clippy::float_cmp)]
pub fn auc_from_scores(scores: &[f64], labels: &[bool]) -> Option<f64> {
    assert_eq!(scores.len(), labels.len(), "length mismatch");
    let n_pos = labels.iter().filter(|&&l| l).count();
    let n_neg = labels.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return None;
    }
    // Sort indices by score; assign midranks to tied groups.
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_unstable_by(|&a, &b| scores[a].total_cmp(&scores[b]));
    let mut rank_sum_pos = 0.0;
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && scores[order[j + 1]] == scores[order[i]] {
            j += 1;
        }
        // Ranks are 1-based: positions i..=j share midrank.
        let midrank = (i + 1 + j + 1) as f64 / 2.0;
        for &idx in &order[i..=j] {
            if labels[idx] {
                rank_sum_pos += midrank;
            }
        }
        i = j + 1;
    }
    let u = rank_sum_pos - (n_pos * (n_pos + 1)) as f64 / 2.0;
    Some(u / (n_pos as f64 * n_neg as f64))
}

/// An ROC curve: `(false positive rate, true positive rate)` points from
/// `(0,0)` to `(1,1)`, one step per distinct score threshold.
#[derive(Debug, Clone, PartialEq)]
pub struct RocCurve {
    /// Curve points in increasing-FPR order.
    pub points: Vec<(f64, f64)>,
}

impl RocCurve {
    /// Computes the curve. Returns `None` when either class is absent.
    // lint:allow(float-eq): identical-score tie grouping, as in
    // `auc_from_scores`.
    #[allow(clippy::float_cmp)]
    pub fn compute(scores: &[f64], labels: &[bool]) -> Option<Self> {
        assert_eq!(scores.len(), labels.len(), "length mismatch");
        let n_pos = labels.iter().filter(|&&l| l).count();
        let n_neg = labels.len() - n_pos;
        if n_pos == 0 || n_neg == 0 {
            return None;
        }
        let mut order: Vec<usize> = (0..scores.len()).collect();
        // Descending score: thresholds sweep from strict to lax.
        order.sort_unstable_by(|&a, &b| scores[b].total_cmp(&scores[a]));
        let mut points = Vec::with_capacity(scores.len() + 1);
        points.push((0.0, 0.0));
        let (mut tp, mut fp) = (0usize, 0usize);
        let mut i = 0;
        while i < order.len() {
            let mut j = i;
            while j + 1 < order.len() && scores[order[j + 1]] == scores[order[i]] {
                j += 1;
            }
            for &idx in &order[i..=j] {
                if labels[idx] {
                    tp += 1;
                } else {
                    fp += 1;
                }
            }
            points.push((fp as f64 / n_neg as f64, tp as f64 / n_pos as f64));
            i = j + 1;
        }
        Some(RocCurve { points })
    }

    /// Area under the curve by the trapezoid rule; equals
    /// [`auc_from_scores`] on the same data.
    pub fn auc(&self) -> f64 {
        self.points
            .windows(2)
            .map(|w| {
                let (x0, y0) = w[0];
                let (x1, y1) = w[1];
                (x1 - x0) * (y0 + y1) / 2.0
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_separation_is_one() {
        let scores = [0.9, 0.8, 0.2, 0.1];
        let labels = [true, true, false, false];
        assert_eq!(auc_from_scores(&scores, &labels), Some(1.0));
    }

    #[test]
    fn inverted_scores_are_zero() {
        let scores = [0.1, 0.9];
        let labels = [true, false];
        assert_eq!(auc_from_scores(&scores, &labels), Some(0.0));
    }

    #[test]
    fn all_tied_is_half() {
        let scores = [0.5, 0.5, 0.5, 0.5];
        let labels = [true, true, false, false];
        assert_eq!(auc_from_scores(&scores, &labels), Some(0.5));
    }

    #[test]
    fn single_class_is_none() {
        assert_eq!(auc_from_scores(&[0.1, 0.2], &[true, true]), None);
        assert_eq!(auc_from_scores(&[], &[]), None);
    }

    #[test]
    fn curve_with_fully_tied_scores_is_the_diagonal_chord() {
        // Every score identical: one threshold step from (0,0) straight
        // to (1,1); the trapezoid area agrees with the rank AUC of 0.5.
        let scores = [0.5, 0.5, 0.5, 0.5];
        let labels = [true, true, false, false];
        let curve = RocCurve::compute(&scores, &labels).unwrap();
        assert_eq!(curve.points, vec![(0.0, 0.0), (1.0, 1.0)]);
        assert!((curve.auc() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn curve_is_none_on_single_class_or_empty_input() {
        assert_eq!(RocCurve::compute(&[0.1, 0.2], &[false, false]), None);
        assert_eq!(RocCurve::compute(&[0.1, 0.2], &[true, true]), None);
        assert_eq!(RocCurve::compute(&[], &[]), None);
    }

    #[test]
    fn known_value_with_partial_overlap() {
        // pos scores {0.8, 0.4}; neg scores {0.6, 0.2}.
        // Pairs won: (0.8>0.6),(0.8>0.2),(0.4>0.2)=3 of 4 → 0.75.
        let scores = [0.8, 0.4, 0.6, 0.2];
        let labels = [true, true, false, false];
        assert_eq!(auc_from_scores(&scores, &labels), Some(0.75));
    }

    #[test]
    fn tie_counts_half() {
        let scores = [0.5, 0.5, 0.1];
        let labels = [true, false, false];
        // Pairs: (0.5 vs 0.5) = 0.5, (0.5 vs 0.1) = 1 → 1.5/2 = 0.75.
        assert_eq!(auc_from_scores(&scores, &labels), Some(0.75));
    }

    #[test]
    fn curve_matches_rank_auc() {
        let scores = [0.9, 0.7, 0.7, 0.55, 0.4, 0.3, 0.2];
        let labels = [true, false, true, true, false, false, false];
        let curve = RocCurve::compute(&scores, &labels).unwrap();
        let rank = auc_from_scores(&scores, &labels).unwrap();
        assert!((curve.auc() - rank).abs() < 1e-12);
        assert_eq!(curve.points.first(), Some(&(0.0, 0.0)));
        assert_eq!(curve.points.last(), Some(&(1.0, 1.0)));
    }

    #[test]
    fn curve_is_monotone() {
        let scores = [0.9, 0.8, 0.7, 0.6, 0.5, 0.4];
        let labels = [true, false, true, false, true, false];
        let curve = RocCurve::compute(&scores, &labels).unwrap();
        for w in curve.points.windows(2) {
            assert!(w[1].0 >= w[0].0);
            assert!(w[1].1 >= w[0].1);
        }
    }
}
