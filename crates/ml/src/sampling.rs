//! Class-imbalance resampling (§6.1).
//!
//! The classes are strongly imbalanced (12% legitimate vs 88%
//! illegitimate). The paper copes with two techniques, both reproduced
//! here:
//!
//! * **random undersampling** (`SUB`) — majority-class instances are
//!   removed at random until the classes are balanced;
//! * **SMOTE** (Chawla et al., JAIR 2002) — the minority class is
//!   oversampled with synthetic instances interpolated between each
//!   minority instance and one of its k nearest minority neighbours,
//!   "operating in feature space rather than data space".

use crate::dataset::Dataset;
use pharmaverify_text::SparseVector;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;

/// The sampling treatments compared in the paper's tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sampling {
    /// Natural class distribution (`NO`).
    None,
    /// Random undersampling of the majority class (`SUB`).
    Undersample,
    /// SMOTE oversampling of the minority class (`SMOTE`).
    Smote,
}

impl Sampling {
    /// Table abbreviation, as in Table 2 of the paper.
    pub fn abbreviation(self) -> &'static str {
        match self {
            Sampling::None => "NO",
            Sampling::Undersample => "SUB",
            Sampling::Smote => "SMOTE",
        }
    }

    /// Applies the treatment to a training set.
    pub fn apply(self, data: &Dataset, seed: u64) -> Dataset {
        match self {
            Sampling::None => data.clone(),
            Sampling::Undersample => undersample(data, seed),
            Sampling::Smote => smote(data, 5, seed),
        }
    }
}

/// Randomly removes majority-class instances until both classes have the
/// minority count. A dataset with an empty class is returned unchanged.
pub fn undersample(data: &Dataset, seed: u64) -> Dataset {
    let (pos, neg) = data.indices_by_class();
    if pos.is_empty() || neg.is_empty() {
        return data.clone();
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let (minority, mut majority) = if pos.len() <= neg.len() {
        (pos, neg)
    } else {
        (neg, pos)
    };
    majority.shuffle(&mut rng);
    majority.truncate(minority.len());
    let mut keep: Vec<usize> = minority.into_iter().chain(majority).collect();
    keep.sort_unstable();
    data.subset(&keep)
}

/// SMOTE: oversamples the minority class with synthetic instances until
/// the classes are balanced, interpolating between each minority instance
/// and a random one of its `k` nearest minority neighbours (Euclidean
/// distance in feature space). A dataset with an empty class or a single
/// minority instance is returned unchanged.
pub fn smote(data: &Dataset, k: usize, seed: u64) -> Dataset {
    let (pos, neg) = data.indices_by_class();
    if pos.is_empty() || neg.is_empty() {
        return data.clone();
    }
    let (minority, majority_len, minority_label) = if pos.len() <= neg.len() {
        (pos, neg.len(), true)
    } else {
        (neg, pos.len(), false)
    };
    if minority.len() < 2 || minority.len() >= majority_len {
        return data.clone();
    }
    let k = k.min(minority.len() - 1).max(1);
    let needed = majority_len - minority.len();
    let mut rng = SmallRng::seed_from_u64(seed);

    // k nearest minority neighbours of each minority instance.
    let neighbours: Vec<Vec<usize>> = minority
        .iter()
        .map(|&i| {
            let mut dists: Vec<(f64, usize)> = minority
                .iter()
                .filter(|&&j| j != i)
                .map(|&j| (data.x(i).distance_sq(data.x(j)), j))
                .collect();
            dists.sort_unstable_by(|a, b| a.0.total_cmp(&b.0));
            dists.truncate(k);
            dists.into_iter().map(|(_, j)| j).collect()
        })
        .collect();

    let mut out = data.clone();
    for s in 0..needed {
        // Round-robin over minority instances, as in the original SMOTE
        // when the oversampling rate exceeds 100%.
        let m = s % minority.len();
        let base = data.x(minority[m]);
        let neighbour = data.x(neighbours[m][rng.gen_range(0..neighbours[m].len())]);
        let gap: f64 = rng.gen_range(0.0..1.0);
        // synthetic = base + gap · (neighbour − base)
        let mut diff = neighbour.clone();
        let mut negated = base.clone();
        negated.scale(-1.0);
        diff = diff.add(&negated);
        diff.scale(gap);
        let synthetic: SparseVector = base.add(&diff);
        out.push(synthetic, minority_label);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(pairs: &[(u32, f64)]) -> SparseVector {
        SparseVector::from_pairs(pairs.to_vec())
    }

    /// 3 positives, 9 negatives.
    fn imbalanced() -> Dataset {
        let mut d = Dataset::new(2);
        for i in 0..3 {
            d.push(v(&[(0, 1.0 + i as f64 * 0.1), (1, 1.0)]), true);
        }
        for i in 0..9 {
            d.push(v(&[(0, -1.0 - i as f64 * 0.1)]), false);
        }
        d
    }

    #[test]
    fn undersample_balances() {
        let d = undersample(&imbalanced(), 1);
        assert_eq!(d.count_positive(), 3);
        assert_eq!(d.count_negative(), 3);
    }

    #[test]
    fn undersample_is_deterministic() {
        let a = undersample(&imbalanced(), 5);
        let b = undersample(&imbalanced(), 5);
        assert_eq!(a.len(), b.len());
        for i in 0..a.len() {
            assert_eq!(a.x(i), b.x(i));
            assert_eq!(a.y(i), b.y(i));
        }
    }

    #[test]
    fn undersample_keeps_all_minority() {
        let d = undersample(&imbalanced(), 2);
        // All three original positives survive.
        assert_eq!(d.count_positive(), 3);
    }

    #[test]
    fn smote_balances_with_synthetics() {
        let d = smote(&imbalanced(), 2, 3);
        assert_eq!(d.count_positive(), 9);
        assert_eq!(d.count_negative(), 9);
        assert_eq!(d.len(), 18);
    }

    #[test]
    fn smote_synthetics_interpolate_minority() {
        let data = imbalanced();
        let d = smote(&data, 2, 3);
        // Synthetic positives lie within the minority bounding box:
        // feature 0 in [1.0, 1.2], feature 1 == 1.0.
        for i in data.len()..d.len() {
            assert!(d.y(i), "synthetics carry the minority label");
            let f0 = d.x(i).get(0);
            let f1 = d.x(i).get(1);
            assert!((1.0..=1.2).contains(&f0), "f0 = {f0}");
            assert!((f1 - 1.0).abs() < 1e-12, "f1 = {f1}");
        }
    }

    #[test]
    fn smote_deterministic_per_seed() {
        let a = smote(&imbalanced(), 2, 7);
        let b = smote(&imbalanced(), 2, 7);
        for i in 0..a.len() {
            assert_eq!(a.x(i), b.x(i));
        }
    }

    #[test]
    fn degenerate_inputs_returned_unchanged() {
        // Single minority instance.
        let mut d = Dataset::new(1);
        d.push(v(&[(0, 1.0)]), true);
        for i in 0..4 {
            d.push(v(&[(0, -(i as f64))]), false);
        }
        assert_eq!(smote(&d, 3, 1).len(), d.len());

        // Single-class dataset.
        let mut single = Dataset::new(1);
        single.push(v(&[(0, 1.0)]), false);
        assert_eq!(undersample(&single, 1).len(), 1);
        assert_eq!(smote(&single, 3, 1).len(), 1);
    }

    #[test]
    fn already_balanced_smote_is_identity() {
        let mut d = Dataset::new(1);
        d.push(v(&[(0, 1.0)]), true);
        d.push(v(&[(0, 2.0)]), true);
        d.push(v(&[(0, -1.0)]), false);
        d.push(v(&[(0, -2.0)]), false);
        assert_eq!(smote(&d, 1, 1).len(), 4);
    }

    #[test]
    fn sampling_enum_dispatch() {
        let data = imbalanced();
        assert_eq!(Sampling::None.apply(&data, 1).len(), data.len());
        assert_eq!(Sampling::Undersample.apply(&data, 1).len(), 6);
        assert_eq!(Sampling::Smote.apply(&data, 1).len(), 18);
        assert_eq!(Sampling::Smote.abbreviation(), "SMOTE");
        assert_eq!(Sampling::None.abbreviation(), "NO");
        assert_eq!(Sampling::Undersample.abbreviation(), "SUB");
    }
}
