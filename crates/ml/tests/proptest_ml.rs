//! Property-based tests for the learning substrate: metric invariants,
//! resampling guarantees, and classifier sanity on arbitrary data.

use pharmaverify_ml::metrics::pairwise_orderedness;
use pharmaverify_ml::{
    auc_from_scores, smote, stratified_folds, undersample, ConfusionMatrix, Dataset, DecisionTree,
    GaussianNaiveBayes, Learner, MultinomialNaiveBayes, RocCurve,
};
use pharmaverify_text::SparseVector;
use proptest::prelude::*;

fn scored_labels() -> impl Strategy<Value = Vec<(f64, bool)>> {
    prop::collection::vec((0.0f64..1.0, any::<bool>()), 2..40)
}

fn labelled_points() -> impl Strategy<Value = Vec<(f64, f64, bool)>> {
    prop::collection::vec((-3.0f64..3.0, -3.0f64..3.0, any::<bool>()), 4..30)
}

fn dataset_from(points: &[(f64, f64, bool)]) -> Dataset {
    let mut d = Dataset::new(2);
    for &(a, b, y) in points {
        d.push(SparseVector::from_pairs(vec![(0, a), (1, b)]), y);
    }
    d
}

proptest! {
    /// AUC is within [0, 1], invariant under strictly monotone transforms
    /// of the scores, and complements under score negation.
    #[test]
    fn auc_invariants(data in scored_labels()) {
        let scores: Vec<f64> = data.iter().map(|&(s, _)| s).collect();
        let labels: Vec<bool> = data.iter().map(|&(_, l)| l).collect();
        if let Some(auc) = auc_from_scores(&scores, &labels) {
            prop_assert!((0.0..=1.0).contains(&auc));
            // Monotone transform: x → 2x + 1.
            let transformed: Vec<f64> = scores.iter().map(|s| 2.0 * s + 1.0).collect();
            prop_assert_eq!(auc_from_scores(&transformed, &labels), Some(auc));
            // Negation flips the ranking.
            let negated: Vec<f64> = scores.iter().map(|s| -s).collect();
            let flipped = auc_from_scores(&negated, &labels).unwrap();
            prop_assert!((auc + flipped - 1.0).abs() < 1e-9);
        }
    }

    /// The ROC curve's trapezoid area equals the rank-statistic AUC.
    #[test]
    fn roc_curve_area_matches_rank_auc(data in scored_labels()) {
        let scores: Vec<f64> = data.iter().map(|&(s, _)| s).collect();
        let labels: Vec<bool> = data.iter().map(|&(_, l)| l).collect();
        if let (Some(curve), Some(auc)) = (
            RocCurve::compute(&scores, &labels),
            auc_from_scores(&scores, &labels),
        ) {
            prop_assert!((curve.auc() - auc).abs() < 1e-9);
        }
    }

    /// Pairwise orderedness is within [0, 1] and equals 1 exactly when no
    /// illegitimate score ties or beats a legitimate score.
    #[test]
    fn pairord_bounds(data in scored_labels()) {
        let scores: Vec<f64> = data.iter().map(|&(s, _)| s).collect();
        let labels: Vec<bool> = data.iter().map(|&(_, l)| l).collect();
        if let Some(p) = pairwise_orderedness(&scores, &labels) {
            prop_assert!((0.0..=1.0).contains(&p));
            let worst_legit = scores
                .iter()
                .zip(&labels)
                .filter(|&(_, &l)| l)
                .map(|(&s, _)| s)
                .fold(f64::INFINITY, f64::min);
            let best_illegit = scores
                .iter()
                .zip(&labels)
                .filter(|&(_, &l)| !l)
                .map(|(&s, _)| s)
                .fold(f64::NEG_INFINITY, f64::max);
            prop_assert_eq!(p == 1.0, best_illegit < worst_legit
                || worst_legit == f64::INFINITY
                || best_illegit == f64::NEG_INFINITY);
        }
    }

    /// Confusion-matrix counts always partition the instance set.
    #[test]
    fn confusion_partitions(
        labels in prop::collection::vec(any::<bool>(), 0..30),
        flips in prop::collection::vec(any::<bool>(), 0..30),
    ) {
        let n = labels.len().min(flips.len());
        let preds: Vec<bool> = labels[..n]
            .iter()
            .zip(&flips[..n])
            .map(|(&l, &f)| l ^ f)
            .collect();
        let m = ConfusionMatrix::from_predictions(&labels[..n], &preds);
        prop_assert_eq!(m.total(), n);
        prop_assert_eq!(m.tp + m.fn_, labels[..n].iter().filter(|&&l| l).count());
        prop_assert!((0.0..=1.0).contains(&m.accuracy()) || n == 0);
    }

    /// Stratified folds partition all indices and balance class counts
    /// within one instance per fold pair.
    #[test]
    fn folds_partition_and_balance(
        labels in prop::collection::vec(any::<bool>(), 6..60),
        k in 2usize..5,
        seed in any::<u64>(),
    ) {
        prop_assume!(k <= labels.len());
        let folds = stratified_folds(&labels, k, seed);
        let mut all: Vec<usize> = folds.iter().flatten().copied().collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..labels.len()).collect::<Vec<_>>());
        let pos_counts: Vec<usize> = folds
            .iter()
            .map(|f| f.iter().filter(|&&i| labels[i]).count())
            .collect();
        let max = pos_counts.iter().max().unwrap();
        let min = pos_counts.iter().min().unwrap();
        prop_assert!(max - min <= 1, "{pos_counts:?}");
    }

    /// Undersampling always balances (when both classes exist) and never
    /// invents instances.
    #[test]
    fn undersample_properties(points in labelled_points(), seed in any::<u64>()) {
        let data = dataset_from(&points);
        let out = undersample(&data, seed);
        prop_assert!(out.len() <= data.len());
        if data.count_positive() > 0 && data.count_negative() > 0 {
            prop_assert_eq!(out.count_positive(), out.count_negative());
        }
        // Every surviving instance exists in the original.
        for i in 0..out.len() {
            prop_assert!(data.iter().any(|(x, y)| x == out.x(i) && y == out.y(i)));
        }
    }

    /// SMOTE balances the classes and every synthetic instance stays in
    /// the minority class's bounding box.
    #[test]
    fn smote_properties(points in labelled_points(), seed in any::<u64>()) {
        let data = dataset_from(&points);
        let out = smote(&data, 3, seed);
        prop_assert!(out.len() >= data.len());
        let minority_is_pos = data.count_positive() <= data.count_negative();
        if data.count_positive() >= 2 && data.count_negative() >= 2 {
            prop_assert_eq!(out.count_positive(), out.count_negative());
        }
        // Bounding-box check per feature.
        for j in 0..2u32 {
            let minority_vals: Vec<f64> = data
                .iter()
                .filter(|&(_, y)| y == minority_is_pos)
                .map(|(x, _)| x.get(j))
                .collect();
            if minority_vals.is_empty() {
                continue;
            }
            let lo = minority_vals.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = minority_vals.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            for i in data.len()..out.len() {
                let v = out.x(i).get(j);
                prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9, "feature {j}: {v} outside [{lo}, {hi}]");
            }
        }
    }

    /// Every classifier produces scores in [0, 1] and consistent hard
    /// decisions on arbitrary two-class data.
    #[test]
    fn classifiers_produce_valid_scores(points in labelled_points()) {
        let data = dataset_from(&points);
        prop_assume!(data.count_positive() > 0 && data.count_negative() > 0);
        // NBM needs non-negative features; shift into the positive range.
        let mut shifted = Dataset::new(2);
        for (x, y) in data.iter() {
            let s = SparseVector::from_pairs(vec![(0, x.get(0) + 3.0), (1, x.get(1) + 3.0)]);
            shifted.push(s, y);
        }
        let learners: Vec<Box<dyn Learner>> = vec![
            Box::new(MultinomialNaiveBayes::default()),
            Box::new(GaussianNaiveBayes::default()),
            Box::new(DecisionTree::default()),
        ];
        for learner in learners {
            let model = learner.fit(&shifted);
            for (x, _) in shifted.iter() {
                let s = model.score(x);
                prop_assert!((0.0..=1.0).contains(&s), "{}: score {s}", model.name());
                prop_assert_eq!(model.predict(x), s >= 0.5);
            }
        }
    }
}
