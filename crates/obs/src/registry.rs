//! The metric registry: counters, gauges, histograms, and hierarchical
//! spans.
//!
//! Every metric carries a *determinism* flag fixed at first use: a
//! deterministic metric's value must be a pure function of the workload
//! (the same at any thread count, on any machine), while a
//! non-deterministic one may depend on scheduling or wall time (executor
//! width, peak concurrency). The renderer splits the trace along this
//! flag, and the determinism audit byte-compares only the deterministic
//! side.
//!
//! Spans are aggregated *by path*, not by instance: two spans recorded at
//! `pipeline/stage/fitted-tfidf` merge into one node with `count == 2`,
//! so the tree's shape and counts are scheduling-independent even when
//! the spans themselves ran on different worker threads. Durations
//! accumulate into the node too, but only the non-deterministic trace
//! section ever renders them.

use crate::clock::{Clock, WallClock};
use std::collections::BTreeMap;
use std::sync::{Mutex, PoisonError};

/// Upper bucket bounds of every histogram, in powers of ten — wide enough
/// for millisecond backoff totals and queue depths alike. Values above
/// the last bound land in the overflow bucket.
pub const HISTOGRAM_BOUNDS: [u64; 7] = [1, 10, 100, 1_000, 10_000, 100_000, 1_000_000];

#[derive(Debug, Clone, Copy)]
struct Counter {
    value: u64,
    deterministic: bool,
}

#[derive(Debug, Clone, Copy)]
struct Gauge {
    value: i64,
    deterministic: bool,
}

/// A fixed-bucket histogram: observation count, sum, and one counter per
/// bound of [`HISTOGRAM_BOUNDS`] plus overflow. Commutative by
/// construction — the multiset of observations determines it, their
/// order never does.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Observations `<=` each bound of [`HISTOGRAM_BOUNDS`], cumulative
    /// per bucket (non-cumulative across buckets), plus overflow last.
    pub buckets: [u64; HISTOGRAM_BOUNDS.len() + 1],
}

impl HistogramSnapshot {
    /// Upper-bound estimate of the `q`-quantile (`0 < q <= 1`): the bound
    /// of the first bucket at which the cumulative count reaches
    /// `ceil(q * count)`. Returns `None` for an empty histogram; an
    /// overflow-bucket quantile reports the last finite bound (the value
    /// is only known to exceed it). With power-of-ten buckets this is an
    /// order-of-magnitude figure, which is all a latency summary needs.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // ceil(q * count) without float rounding at the top end.
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (slot, &n) in self.buckets.iter().enumerate() {
            cumulative += n;
            if cumulative >= target {
                return Some(
                    HISTOGRAM_BOUNDS
                        .get(slot)
                        .copied()
                        .unwrap_or(HISTOGRAM_BOUNDS[HISTOGRAM_BOUNDS.len() - 1]),
                );
            }
        }
        None
    }
}

#[derive(Debug, Clone)]
struct Histogram {
    count: u64,
    sum: u64,
    buckets: [u64; HISTOGRAM_BOUNDS.len() + 1],
    deterministic: bool,
}

impl Histogram {
    fn new(deterministic: bool) -> Histogram {
        Histogram {
            count: 0,
            sum: 0,
            buckets: [0; HISTOGRAM_BOUNDS.len() + 1],
            deterministic,
        }
    }

    fn observe(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        let slot = HISTOGRAM_BOUNDS
            .iter()
            .position(|&bound| value <= bound)
            .unwrap_or(HISTOGRAM_BOUNDS.len());
        self.buckets[slot] += 1;
    }
}

/// One node of the aggregated span tree.
#[derive(Debug, Default, Clone)]
pub struct SpanNode {
    /// Times a span ended at exactly this path. Intermediate path
    /// segments that were never opened themselves stay at zero.
    pub count: u64,
    /// Accumulated duration of those spans, in clock microseconds.
    /// Scheduling-dependent — never part of the deterministic view.
    pub total_micros: u64,
    /// Child spans, keyed by path segment (deterministically ordered).
    pub children: BTreeMap<String, SpanNode>,
}

/// A live span: records `(count += 1, total += elapsed)` at its path when
/// dropped.
#[must_use = "a span records its duration when dropped"]
pub struct SpanGuard<'a> {
    registry: &'a Registry,
    path: String,
    start: u64,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let end = self.registry.clock.now_micros();
        // lint:allow(obs-name): replays the path the guard was opened with; `span()` validated it.
        self.registry
            .record_span(&self.path, end.saturating_sub(self.start));
    }
}

/// A thread-safe registry of counters, gauges, histograms, and spans.
///
/// Metric names are flat strings; span paths use `/` as the hierarchy
/// separator (`pipeline/stage/fitted-tfidf`). All maps are B-tree ordered
/// so rendering is canonical without a sort pass.
pub struct Registry {
    clock: Box<dyn Clock>,
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
    spans: Mutex<SpanNode>,
}

impl Registry {
    /// A registry timed by a fresh [`WallClock`].
    pub fn new() -> Registry {
        Registry::with_clock(Box::new(WallClock::new()))
    }

    /// A registry timed by the given clock (tests pass a
    /// [`crate::VirtualClock`]).
    pub fn with_clock(clock: Box<dyn Clock>) -> Registry {
        Registry {
            clock,
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
            spans: Mutex::new(SpanNode::default()),
        }
    }

    /// Adds `delta` to the deterministic counter `name`.
    pub fn add(&self, name: &str, delta: u64) {
        self.bump(name, delta, true);
    }

    /// Adds `delta` to the non-deterministic counter `name` (values that
    /// may legitimately differ between runs of the same seed).
    pub fn add_nondet(&self, name: &str, delta: u64) {
        self.bump(name, delta, false);
    }

    fn bump(&self, name: &str, delta: u64, deterministic: bool) {
        let mut counters = self.counters.lock().unwrap_or_else(PoisonError::into_inner);
        let counter = counters.entry(name.to_string()).or_insert(Counter {
            value: 0,
            deterministic,
        });
        counter.value = counter.value.saturating_add(delta);
    }

    /// Current value of counter `name` (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(name)
            .map_or(0, |c| c.value)
    }

    /// Sets the deterministic gauge `name`.
    pub fn set_gauge(&self, name: &str, value: i64) {
        self.put_gauge(name, value, true, false);
    }

    /// Sets the non-deterministic gauge `name`.
    pub fn set_gauge_nondet(&self, name: &str, value: i64) {
        self.put_gauge(name, value, false, false);
    }

    /// Raises the non-deterministic gauge `name` to `value` if higher
    /// (peak tracking, e.g. maximum observed concurrency).
    pub fn max_gauge_nondet(&self, name: &str, value: i64) {
        self.put_gauge(name, value, false, true);
    }

    fn put_gauge(&self, name: &str, value: i64, deterministic: bool, max_only: bool) {
        let mut gauges = self.gauges.lock().unwrap_or_else(PoisonError::into_inner);
        let gauge = gauges.entry(name.to_string()).or_insert(Gauge {
            value,
            deterministic,
        });
        if !max_only || value > gauge.value {
            gauge.value = value;
        }
    }

    /// Current value of gauge `name`.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(name)
            .map(|g| g.value)
    }

    /// Records `value` into the deterministic histogram `name`.
    pub fn observe(&self, name: &str, value: u64) {
        self.record_observation(name, value, true);
    }

    /// Records `value` into the non-deterministic histogram `name` —
    /// for observations that legitimately vary between runs of the same
    /// seed, such as wall-clock request latencies. Rendered only in the
    /// trace's non-deterministic section.
    pub fn observe_nondet(&self, name: &str, value: u64) {
        self.record_observation(name, value, false);
    }

    fn record_observation(&self, name: &str, value: u64, deterministic: bool) {
        let mut histograms = self
            .histograms
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(deterministic))
            .observe(value);
    }

    /// Snapshot of histogram `name`, if it exists.
    pub fn histogram(&self, name: &str) -> Option<HistogramSnapshot> {
        self.histograms
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(name)
            .map(|h| HistogramSnapshot {
                count: h.count,
                sum: h.sum,
                buckets: h.buckets,
            })
    }

    /// Opens a span at `path` (segments separated by `/`). The span
    /// records into the tree when the returned guard drops.
    pub fn span(&self, path: &str) -> SpanGuard<'_> {
        SpanGuard {
            registry: self,
            path: path.to_string(),
            start: self.clock.now_micros(),
        }
    }

    /// Low-level span recording: `count += 1`, `total += micros` at
    /// `path`, creating intermediate nodes as needed.
    pub fn record_span(&self, path: &str, micros: u64) {
        let mut root = self.spans.lock().unwrap_or_else(PoisonError::into_inner);
        let mut node = &mut *root;
        for segment in path.split('/').filter(|s| !s.is_empty()) {
            node = node.children.entry(segment.to_string()).or_default();
        }
        node.count += 1;
        node.total_micros = node.total_micros.saturating_add(micros);
    }

    /// Completed-span count at exactly `path` (0 if the node does not
    /// exist or was only ever an intermediate segment).
    pub fn span_count(&self, path: &str) -> u64 {
        let root = self.spans.lock().unwrap_or_else(PoisonError::into_inner);
        let mut node = &*root;
        for segment in path.split('/').filter(|s| !s.is_empty()) {
            match node.children.get(segment) {
                Some(child) => node = child,
                None => return 0,
            }
        }
        node.count
    }

    /// Every span node as `(path, count, total_micros)` in depth-first
    /// path order — the flat form the binaries print to stderr.
    pub fn span_totals(&self) -> Vec<(String, u64, u64)> {
        fn walk(prefix: &str, node: &SpanNode, out: &mut Vec<(String, u64, u64)>) {
            for (name, child) in &node.children {
                let path = if prefix.is_empty() {
                    name.clone()
                } else {
                    format!("{prefix}/{name}")
                };
                out.push((path.clone(), child.count, child.total_micros));
                walk(&path, child, out);
            }
        }
        let root = self.spans.lock().unwrap_or_else(PoisonError::into_inner);
        let mut out = Vec::new();
        walk("", &root, &mut out);
        out
    }

    /// Internal snapshot for the renderer: `(deterministic?, name, value)`
    /// triples plus the span tree, all under a single consistent lock
    /// schedule.
    pub(crate) fn snapshot(&self) -> RegistrySnapshot {
        let counters = self
            .counters
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(k, v)| (k.clone(), v.value, v.deterministic))
            .collect();
        let gauges = self
            .gauges
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(k, v)| (k.clone(), v.value, v.deterministic))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(k, v)| {
                (
                    k.clone(),
                    HistogramSnapshot {
                        count: v.count,
                        sum: v.sum,
                        buckets: v.buckets,
                    },
                    v.deterministic,
                )
            })
            .collect();
        let spans = self
            .spans
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone();
        RegistrySnapshot {
            counters,
            gauges,
            histograms,
            spans,
        }
    }
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let snap = self.snapshot();
        f.debug_struct("Registry")
            .field("counters", &snap.counters.len())
            .field("gauges", &snap.gauges.len())
            .field("histograms", &snap.histograms.len())
            .finish()
    }
}

/// A point-in-time copy of every metric, consumed by the renderer.
pub(crate) struct RegistrySnapshot {
    pub counters: Vec<(String, u64, bool)>,
    pub gauges: Vec<(String, i64, bool)>,
    pub histograms: Vec<(String, HistogramSnapshot, bool)>,
    pub spans: SpanNode,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VirtualClock;

    #[test]
    fn counters_accumulate_and_read_back() {
        let reg = Registry::new();
        reg.add("a/b", 2);
        reg.add("a/b", 3);
        assert_eq!(reg.counter("a/b"), 5);
        assert_eq!(reg.counter("missing"), 0);
    }

    #[test]
    fn gauges_set_and_max() {
        let reg = Registry::new();
        reg.set_gauge("g", 7);
        reg.set_gauge("g", 3);
        assert_eq!(reg.gauge("g"), Some(3));
        reg.max_gauge_nondet("peak", 4);
        reg.max_gauge_nondet("peak", 2);
        reg.max_gauge_nondet("peak", 9);
        assert_eq!(reg.gauge("peak"), Some(9));
        assert_eq!(reg.gauge("absent"), None);
    }

    #[test]
    fn histogram_buckets_by_powers_of_ten() {
        let reg = Registry::new();
        for v in [0, 1, 5, 100, 1_000_000, 2_000_000] {
            reg.observe("h", v);
        }
        let h = reg.histogram("h").unwrap();
        assert_eq!(h.count, 6);
        assert_eq!(h.sum, 3_000_106);
        assert_eq!(h.buckets[0], 2, "0 and 1 are <= 1");
        assert_eq!(h.buckets[1], 1, "5 is <= 10");
        assert_eq!(h.buckets[2], 1, "100 is <= 100");
        assert_eq!(h.buckets[6], 1, "1e6 is <= 1e6");
        assert_eq!(h.buckets[7], 1, "2e6 overflows");
    }

    #[test]
    fn nondet_histograms_carry_the_flag() {
        let reg = Registry::new();
        reg.observe_nondet("lat", 5);
        reg.observe_nondet("lat", 50);
        let snap = reg.snapshot();
        let (_, hist, deterministic) = &snap.histograms[0];
        assert_eq!(hist.count, 2);
        assert!(!deterministic);
    }

    #[test]
    fn quantile_reports_bucket_upper_bounds() {
        let reg = Registry::new();
        // 10 observations: 8 in le_10, 1 in le_1000, 1 in overflow.
        for _ in 0..8 {
            reg.observe("h", 7);
        }
        reg.observe("h", 500);
        reg.observe("h", 5_000_000);
        let h = reg.histogram("h").unwrap();
        assert_eq!(h.quantile(0.5), Some(10));
        assert_eq!(h.quantile(0.8), Some(10));
        assert_eq!(h.quantile(0.9), Some(1_000));
        assert_eq!(
            h.quantile(1.0),
            Some(1_000_000),
            "overflow quantile reports the last finite bound"
        );
        assert_eq!(
            HistogramSnapshot {
                count: 0,
                sum: 0,
                buckets: [0; HISTOGRAM_BOUNDS.len() + 1],
            }
            .quantile(0.5),
            None
        );
    }

    #[test]
    fn spans_aggregate_by_path_with_virtual_durations() {
        let clock = VirtualClock::new(10);
        let reg = Registry::with_clock(Box::new(clock));
        {
            let _outer = reg.span("report/section/table 1");
        }
        {
            let _again = reg.span("report/section/table 1");
        }
        // Each guard takes two readings (start, end) at 10µs per reading.
        assert_eq!(reg.span_count("report/section/table 1"), 2);
        assert_eq!(reg.span_count("report/section"), 0, "intermediate node");
        assert_eq!(reg.span_count("report"), 0);
        let totals = reg.span_totals();
        assert_eq!(
            totals,
            vec![
                ("report".to_string(), 0, 0),
                ("report/section".to_string(), 0, 0),
                ("report/section/table 1".to_string(), 2, 20),
            ]
        );
    }

    #[test]
    fn record_span_creates_intermediate_nodes() {
        let reg = Registry::new();
        reg.record_span("a/b/c", 5);
        reg.record_span("a", 1);
        assert_eq!(reg.span_count("a"), 1);
        assert_eq!(reg.span_count("a/b"), 0);
        assert_eq!(reg.span_count("a/b/c"), 1);
        assert_eq!(reg.span_count("a/b/c/d"), 0);
    }

    #[test]
    fn determinism_flag_sticks_to_first_use() {
        let reg = Registry::new();
        reg.add_nondet("n", 1);
        reg.add("n", 1); // later deterministic add keeps the nondet flag
        let snap = reg.snapshot();
        let (_, value, deterministic) = &snap.counters[0];
        assert_eq!(*value, 2);
        assert!(!deterministic);
    }
}
