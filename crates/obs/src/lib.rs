//! Deterministic observability for the pharmacy-verification stack.
//!
//! One [`Registry`] holds three metric families — counters, gauges, and
//! fixed-bound histograms — plus a tree of hierarchical spans keyed by
//! `/`-separated paths. Every metric carries a determinism flag fixed at
//! first use: deterministic metrics must reach the same value for the
//! same seed regardless of worker count, and only they appear in the
//! deterministic view of the rendered trace. Span *counts* are
//! deterministic (the tree is aggregated by path, so scheduling cannot
//! reshape it); span *durations* come from a pluggable [`Clock`] and live
//! exclusively in the non-deterministic section.
//!
//! Library crates record into the process-wide registry via [`global`];
//! tests that need isolation construct their own `Registry` (usually with
//! a [`VirtualClock`]) and inject it where supported.
//!
//! ```
//! use pharmaverify_obs::{Registry, VirtualClock};
//!
//! let reg = Registry::with_clock(Box::new(VirtualClock::new(5)));
//! reg.add("crawl/fetch/attempts", 3);
//! {
//!     let _span = reg.span("pipeline/stage/fitted-tfidf");
//! }
//! assert_eq!(reg.counter("crawl/fetch/attempts"), 3);
//! assert_eq!(reg.span_count("pipeline/stage/fitted-tfidf"), 1);
//! let view = reg.render_deterministic();
//! assert!(view.contains("\"crawl/fetch/attempts\": 3"));
//! ```

mod clock;
mod registry;
mod render;

pub use clock::{Clock, VirtualClock, WallClock};
pub use registry::{HistogramSnapshot, Registry, SpanGuard, SpanNode, HISTOGRAM_BOUNDS};
pub use render::{deterministic_slice, render_trace};

use std::sync::{Arc, OnceLock};

static GLOBAL: OnceLock<Arc<Registry>> = OnceLock::new();

/// The process-wide registry, created on first use with a wall clock.
/// Library crates record here so the binary can dump one unified trace.
pub fn global() -> &'static Registry {
    global_arc_ref()
}

fn global_arc_ref() -> &'static Arc<Registry> {
    GLOBAL.get_or_init(|| Arc::new(Registry::new()))
}

/// A shared handle to the process-wide registry, for components that
/// store their registry (for example the artifact pipeline, which can
/// also be given a private one in tests).
pub fn global_arc() -> Arc<Registry> {
    Arc::clone(global_arc_ref())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_registry_is_shared() {
        global().add("test/lib/global_counter", 2);
        let arc = global_arc();
        arc.add("test/lib/global_counter", 1);
        assert!(global().counter("test/lib/global_counter") >= 3);
    }
}
