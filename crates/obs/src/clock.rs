//! Pluggable time sources for span timing.
//!
//! Spans never read the system clock directly: the registry holds a
//! [`Clock`], and the binary installs a [`WallClock`] while tests install
//! a [`VirtualClock`] — the same virtual-time discipline the crawl layer
//! uses for retry backoff. Durations therefore stay *out* of every
//! deterministic code path; only the trace's non-deterministic section
//! ever contains them.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A monotonic time source, read as microseconds since an arbitrary
/// origin.
pub trait Clock: Send + Sync {
    /// Current time in microseconds. Must be monotonic per clock
    /// instance; the origin is unspecified.
    fn now_micros(&self) -> u64;
}

/// Wall-clock time relative to the clock's creation. The default clock of
/// a [`crate::Registry`] — used by the binaries, where real durations are
/// the point.
#[derive(Debug)]
pub struct WallClock {
    origin: Instant,
}

impl WallClock {
    /// A wall clock starting at zero now.
    pub fn new() -> WallClock {
        WallClock {
            // lint:allow(nondet): this IS the Clock seam every other wall-clock read routes through.
            origin: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock::new()
    }
}

impl Clock for WallClock {
    fn now_micros(&self) -> u64 {
        u64::try_from(self.origin.elapsed().as_micros()).unwrap_or(u64::MAX)
    }
}

/// A deterministic clock: every reading advances an atomic tick counter
/// by a fixed step, so a serial sequence of spans observes exact,
/// reproducible durations. Clones share the underlying counter, letting a
/// test keep a handle to [`VirtualClock::advance`] the time by hand while
/// the registry owns the boxed clock.
#[derive(Debug, Clone)]
pub struct VirtualClock {
    ticks: Arc<AtomicU64>,
    step: u64,
}

impl VirtualClock {
    /// A virtual clock starting at zero that advances `step_micros` per
    /// reading.
    pub fn new(step_micros: u64) -> VirtualClock {
        VirtualClock {
            ticks: Arc::new(AtomicU64::new(0)),
            step: step_micros,
        }
    }

    /// Advances the clock by `micros` without producing a reading.
    pub fn advance(&self, micros: u64) {
        self.ticks.fetch_add(micros, Ordering::Relaxed);
    }
}

impl Clock for VirtualClock {
    fn now_micros(&self) -> u64 {
        self.ticks.fetch_add(self.step, Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_monotonic() {
        let clock = WallClock::new();
        let a = clock.now_micros();
        let b = clock.now_micros();
        assert!(b >= a);
    }

    #[test]
    fn virtual_clock_steps_per_reading() {
        let clock = VirtualClock::new(10);
        assert_eq!(clock.now_micros(), 0);
        assert_eq!(clock.now_micros(), 10);
        clock.advance(100);
        assert_eq!(clock.now_micros(), 120);
    }

    #[test]
    fn virtual_clock_clones_share_time() {
        let a = VirtualClock::new(1);
        let b = a.clone();
        a.advance(41);
        assert_eq!(b.now_micros(), 41);
    }
}
