//! Canonical JSON rendering of a registry, split into a deterministic
//! and a non-deterministic section.
//!
//! The output is byte-stable by construction: objects are written from
//! B-tree-ordered maps with a fixed 2-space indent, all values are
//! integers, and strings use a fixed escaping scheme. The top level has
//! exactly two keys:
//!
//! * `"deterministic"` — counters/gauges/histograms flagged
//!   deterministic, plus the span tree *without durations* (names and
//!   counts only). Two runs of the same seed must render this section
//!   byte-identically at any thread count; the xtask determinism audit
//!   enforces it.
//! * `"nondeterministic"` — everything scheduling- or wall-clock-
//!   dependent: non-deterministic metrics and the span tree's
//!   accumulated `total_micros`. Quantizing timings out of the
//!   deterministic view (durations are *dropped* there, not rounded)
//!   is what makes the contract exact rather than approximate.
//!
//! [`deterministic_slice`] cuts the `"deterministic"` object back out of
//! a rendered trace, so tests and the audit can byte-compare the
//! deterministic views of two trace files without a JSON parser.

use crate::registry::{Registry, RegistrySnapshot, SpanNode, HISTOGRAM_BOUNDS};

/// Appends `s` as a JSON string literal (quotes included).
fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

/// Writes `"key": ` at `depth`.
fn push_key(out: &mut String, depth: usize, key: &str) {
    push_indent(out, depth);
    push_json_string(out, key);
    out.push_str(": ");
}

/// Writes an object of scalar entries; `entries` must already be sorted.
fn push_scalar_map<T: std::fmt::Display>(out: &mut String, depth: usize, entries: &[(String, T)]) {
    if entries.is_empty() {
        out.push_str("{}");
        return;
    }
    out.push_str("{\n");
    for (i, (key, value)) in entries.iter().enumerate() {
        push_key(out, depth + 1, key);
        out.push_str(&value.to_string());
        if i + 1 < entries.len() {
            out.push(',');
        }
        out.push('\n');
    }
    push_indent(out, depth);
    out.push('}');
}

/// Writes one histogram object: buckets, count, sum (alphabetical).
fn push_histogram(out: &mut String, depth: usize, hist: &crate::registry::HistogramSnapshot) {
    out.push_str("{\n");
    push_key(out, depth + 1, "buckets");
    let mut buckets: Vec<(String, u64)> = HISTOGRAM_BOUNDS
        .iter()
        .zip(hist.buckets.iter())
        .map(|(bound, &n)| (format!("le_{bound}"), n))
        .collect();
    buckets.push(("over".to_string(), hist.buckets[HISTOGRAM_BOUNDS.len()]));
    push_scalar_map(out, depth + 1, &buckets);
    out.push_str(",\n");
    push_key(out, depth + 1, "count");
    out.push_str(&hist.count.to_string());
    out.push_str(",\n");
    push_key(out, depth + 1, "sum");
    out.push_str(&hist.sum.to_string());
    out.push('\n');
    push_indent(out, depth);
    out.push('}');
}

/// Writes a span subtree. With `timings` the nodes carry `total_micros`
/// (the non-deterministic rendering); without, only `children` and
/// `count` (the deterministic rendering).
fn push_span_children(out: &mut String, depth: usize, node: &SpanNode, timings: bool) {
    if node.children.is_empty() {
        out.push_str("{}");
        return;
    }
    out.push_str("{\n");
    let last = node.children.len() - 1;
    for (i, (name, child)) in node.children.iter().enumerate() {
        push_key(out, depth + 1, name);
        out.push_str("{\n");
        push_key(out, depth + 2, "children");
        push_span_children(out, depth + 2, child, timings);
        out.push_str(",\n");
        push_key(out, depth + 2, "count");
        out.push_str(&child.count.to_string());
        if timings {
            out.push_str(",\n");
            push_key(out, depth + 2, "total_micros");
            out.push_str(&child.total_micros.to_string());
        }
        out.push('\n');
        push_indent(out, depth + 1);
        out.push('}');
        if i < last {
            out.push(',');
        }
        out.push('\n');
    }
    push_indent(out, depth);
    out.push('}');
}

fn push_section(out: &mut String, snapshot: &RegistrySnapshot, deterministic: bool) {
    let counters: Vec<(String, u64)> = snapshot
        .counters
        .iter()
        .filter(|(_, _, det)| *det == deterministic)
        .map(|(k, v, _)| (k.clone(), *v))
        .collect();
    let gauges: Vec<(String, i64)> = snapshot
        .gauges
        .iter()
        .filter(|(_, _, det)| *det == deterministic)
        .map(|(k, v, _)| (k.clone(), *v))
        .collect();

    out.push_str("{\n");
    push_key(out, 2, "counters");
    push_scalar_map(out, 2, &counters);
    out.push_str(",\n");
    push_key(out, 2, "gauges");
    push_scalar_map(out, 2, &gauges);
    out.push_str(",\n");
    push_key(out, 2, "histograms");
    let hists: Vec<_> = snapshot
        .histograms
        .iter()
        .filter(|(_, _, det)| *det == deterministic)
        .collect();
    if hists.is_empty() {
        out.push_str("{}");
    } else {
        out.push_str("{\n");
        for (i, (name, hist, _)) in hists.iter().enumerate() {
            push_key(out, 3, name);
            push_histogram(out, 3, hist);
            if i + 1 < hists.len() {
                out.push(',');
            }
            out.push('\n');
        }
        push_indent(out, 2);
        out.push('}');
    }
    out.push_str(",\n");
    if deterministic {
        push_key(out, 2, "spans");
        push_span_children(out, 2, &snapshot.spans, false);
    } else {
        push_key(out, 2, "span_micros");
        push_span_children(out, 2, &snapshot.spans, true);
    }
    out.push('\n');
    push_indent(out, 1);
    out.push('}');
}

/// Renders the full canonical trace of `registry`: the deterministic
/// section first, then the non-deterministic one.
pub fn render_trace(registry: &Registry) -> String {
    let snapshot = registry.snapshot();
    let mut out = String::new();
    out.push_str("{\n");
    push_key(&mut out, 1, "deterministic");
    push_section(&mut out, &snapshot, true);
    out.push_str(",\n");
    push_key(&mut out, 1, "nondeterministic");
    push_section(&mut out, &snapshot, false);
    out.push('\n');
    out.push_str("}\n");
    out
}

/// The `"deterministic"` object of a rendered trace, exactly as it
/// appears in the trace text (same bytes, same indentation) — the unit
/// of byte comparison for the determinism contract. Returns `None` when
/// `trace` is not a rendered trace.
pub fn deterministic_slice(trace: &str) -> Option<&str> {
    let key = "\"deterministic\":";
    let after_key = trace.find(key)? + key.len();
    let open = after_key + trace[after_key..].find('{')?;
    let bytes = trace.as_bytes();
    let mut depth = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    for (i, &b) in bytes[open..].iter().enumerate() {
        if in_string {
            if escaped {
                escaped = false;
            } else if b == b'\\' {
                escaped = true;
            } else if b == b'"' {
                in_string = false;
            }
            continue;
        }
        match b {
            b'"' => in_string = true,
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&trace[open..=open + i]);
                }
            }
            _ => {}
        }
    }
    None
}

impl Registry {
    /// Renders the full trace (see [`render_trace`]).
    pub fn render_trace(&self) -> String {
        render_trace(self)
    }

    /// Renders only the deterministic view — implemented as the literal
    /// [`deterministic_slice`] of [`Registry::render_trace`], so the two
    /// can never drift apart.
    pub fn render_deterministic(&self) -> String {
        let trace = self.render_trace();
        deterministic_slice(&trace).unwrap_or_default().to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VirtualClock;

    fn sample_registry() -> Registry {
        let reg = Registry::with_clock(Box::new(VirtualClock::new(7)));
        reg.add("crawl/fetch/attempts", 12);
        reg.add("pipeline/cache/fitted-tfidf/misses", 3);
        reg.add_nondet("scratch/threads_seen", 4);
        reg.set_gauge("corpus/sites", 60);
        reg.set_gauge_nondet("pipeline/executor/width", 4);
        reg.observe("crawl/backoff/per_site_ms", 300);
        reg.observe("crawl/backoff/per_site_ms", 0);
        {
            let _a = reg.span("report/section/table 1");
        }
        {
            let _b = reg.span("pipeline/stage/fitted-tfidf");
        }
        reg
    }

    #[test]
    fn trace_renders_both_sections_sorted() {
        let trace = sample_registry().render_trace();
        let det_at = trace.find("\"deterministic\"").unwrap();
        let nondet_at = trace.find("\"nondeterministic\"").unwrap();
        assert!(det_at < nondet_at);
        // Deterministic side: sorted counters, histogram, span counts.
        let det = deterministic_slice(&trace).unwrap();
        assert!(det.contains("\"crawl/fetch/attempts\": 12"));
        assert!(det.contains("\"pipeline/cache/fitted-tfidf/misses\": 3"));
        assert!(det.contains("\"corpus/sites\": 60"));
        assert!(det.contains("\"le_1000\": 1"));
        assert!(det.contains("\"sum\": 300"));
        assert!(!det.contains("total_micros"), "durations leaked: {det}");
        assert!(!det.contains("threads_seen"));
        assert!(!det.contains("executor/width"));
        // Non-deterministic side: the rest, with durations.
        let tail = &trace[det_at + det.len()..];
        assert!(tail.contains("\"scratch/threads_seen\": 4"));
        assert!(tail.contains("\"pipeline/executor/width\": 4"));
        assert!(tail.contains("\"total_micros\": 7"));
    }

    #[test]
    fn nondeterministic_histograms_stay_out_of_the_deterministic_view() {
        let reg = Registry::new();
        reg.observe("det/h", 5);
        reg.observe_nondet("serve/latency_micros", 5_000);
        let trace = reg.render_trace();
        let det = deterministic_slice(&trace).unwrap();
        assert!(det.contains("\"det/h\""));
        assert!(!det.contains("latency_micros"), "leaked: {det}");
        let tail = &trace[trace.find("\"nondeterministic\"").unwrap()..];
        assert!(tail.contains("\"serve/latency_micros\""));
        assert!(tail.contains("\"le_10000\": 1"));
    }

    #[test]
    fn deterministic_view_ignores_wall_time() {
        // Two registries with identical deterministic activity but
        // different clock behaviour must agree on the deterministic view.
        let fast = Registry::with_clock(Box::new(VirtualClock::new(1)));
        let slow = Registry::with_clock(Box::new(VirtualClock::new(9999)));
        for reg in [&fast, &slow] {
            reg.add("a", 1);
            reg.observe("h", 42);
            let _span = reg.span("x/y");
        }
        assert_eq!(fast.render_deterministic(), slow.render_deterministic());
        assert_ne!(fast.render_trace(), slow.render_trace());
    }

    #[test]
    fn slice_matches_render_deterministic() {
        let reg = sample_registry();
        let trace = reg.render_trace();
        assert_eq!(
            deterministic_slice(&trace).unwrap(),
            reg.render_deterministic()
        );
    }

    #[test]
    fn slice_survives_braces_and_quotes_in_names() {
        let reg = Registry::new();
        reg.add("odd{name}/with\"quote", 1);
        reg.record_span("section/tables 3-6 {grid}", 5);
        let trace = reg.render_trace();
        let det = deterministic_slice(&trace).unwrap();
        assert!(det.starts_with('{') && det.ends_with('}'));
        assert!(det.contains("odd{name}"));
        assert!(det.contains("tables 3-6 {grid}"));
    }

    #[test]
    fn slice_of_garbage_is_none() {
        assert_eq!(deterministic_slice("not a trace"), None);
        assert_eq!(deterministic_slice("\"deterministic\": ["), None);
    }

    #[test]
    fn empty_registry_renders_empty_maps() {
        let trace = Registry::new().render_trace();
        assert!(trace.contains("\"counters\": {}"));
        assert!(trace.contains("\"spans\": {}"));
        assert!(trace.ends_with("}\n"));
    }

    #[test]
    fn rendering_is_reproducible() {
        let reg = sample_registry();
        assert_eq!(reg.render_deterministic(), reg.render_deterministic());
    }
}
