//! Property tests for the adversarial generators' determinism contract:
//! attacks are pure functions of `(snapshot, config, seed)`, and
//! strength 0 is a byte-identical no-op — for every kind, strength, and
//! seed.

use pharmaverify_corpus::{
    apply_attack, AttackConfig, AttackKind, CorpusConfig, Snapshot, SyntheticWeb,
};
use proptest::prelude::*;
use std::sync::OnceLock;

/// One shared clean snapshot: attack purity is a property of the attack,
/// not of the input, so a fixed input keeps the test budget on the
/// attack parameters.
fn clean() -> &'static Snapshot {
    static SNAP: OnceLock<Snapshot> = OnceLock::new();
    SNAP.get_or_init(|| {
        SyntheticWeb::generate(&CorpusConfig::small(), 42)
            .snapshot()
            .clone()
    })
}

fn web_bytes(s: &Snapshot) -> Vec<(String, String)> {
    s.web
        .iter()
        .map(|(u, h)| (u.to_string(), h.to_string()))
        .collect()
}

fn any_kind() -> impl Strategy<Value = AttackKind> {
    (0usize..AttackKind::ALL.len()).prop_map(|i| AttackKind::ALL[i])
}

proptest! {
    /// Same `(config, seed)` → byte-identical attacked snapshot and
    /// identical attack ground truth, for every kind and strength.
    #[test]
    fn attack_is_pure_function_of_seed_and_params(
        kind in any_kind(),
        strength in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let cfg = AttackConfig::new(kind, strength);
        let a = apply_attack(clean(), &cfg, seed);
        let b = apply_attack(clean(), &cfg, seed);
        prop_assert_eq!(web_bytes(&a.snapshot), web_bytes(&b.snapshot));
        prop_assert_eq!(&a.snapshot.sites, &b.snapshot.sites);
        prop_assert_eq!(&a.farm_domains, &b.farm_domains);
        prop_assert_eq!(&a.mutated_domains, &b.mutated_domains);
    }

    /// Strength 0 is a byte-identical no-op regardless of kind, seed, or
    /// the other knobs.
    #[test]
    fn strength_zero_is_byte_identical_noop(
        kind in any_kind(),
        seed in any::<u64>(),
        max_hubs in 1usize..8,
        seed_targeting in 0.0f64..1.0,
    ) {
        let mut cfg = AttackConfig::new(kind, 0.0);
        cfg.max_hubs = max_hubs;
        cfg.seed_targeting = seed_targeting;
        let out = apply_attack(clean(), &cfg, seed);
        prop_assert_eq!(web_bytes(&out.snapshot), web_bytes(clean()));
        prop_assert_eq!(&out.snapshot.sites, &clean().sites);
        prop_assert!(out.farm_domains.is_empty());
        prop_assert!(out.mutated_domains.is_empty());
    }

    /// Attacks never flip oracle labels: pre-existing sites keep their
    /// class, and injected farm sites are always illegitimate.
    #[test]
    fn attacks_never_flip_labels(
        kind in any_kind(),
        strength in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let out = apply_attack(clean(), &AttackConfig::new(kind, strength), seed);
        for (old, new) in clean().sites.iter().zip(&out.snapshot.sites) {
            prop_assert_eq!(&old.domain, &new.domain);
            prop_assert_eq!(old.class, new.class);
        }
        for farm in &out.farm_domains {
            prop_assert_eq!(out.snapshot.oracle(farm), Some(false));
        }
    }
}
