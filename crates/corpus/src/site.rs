//! Pharmacy-site metadata.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Ground-truth class of a pharmacy (the oracle `O` of §3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SiteClass {
    /// Adheres to regulations: the positive class.
    Legitimate,
    /// Violates regulations or defrauds: the negative class.
    Illegitimate,
}

impl SiteClass {
    /// `true` for the positive (legitimate) class — the label convention
    /// of the learning substrate.
    pub fn is_legitimate(self) -> bool {
        matches!(self, SiteClass::Legitimate)
    }
}

impl fmt::Display for SiteClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SiteClass::Legitimate => "legitimate",
            SiteClass::Illegitimate => "illegitimate",
        })
    }
}

/// Behavioural profile of a generated site. Profiles model the
/// sub-populations the paper's outlier analysis (§6.4) identified; they
/// are generation-time detail, never exposed to the classifiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SiteProfile {
    /// Typical member of its class.
    Standard,
    /// Illegitimate site that mimics legitimate text and stays out of
    /// affiliate networks — the illegitimate outliers that "fool" the
    /// system.
    MimicOutlier,
    /// Legitimate refill-only pharmacy with thin content — the legitimate
    /// outliers at the bottom of the ranking.
    RefillOnly,
    /// Central site of an illegitimate affiliate network; other
    /// illegitimate pharmacies link to it.
    AffiliateHub,
}

/// One labelled pharmacy in a snapshot.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PharmacySite {
    /// Second-level domain (e.g. `cheap-pills17.com`).
    pub domain: String,
    /// Ground-truth class.
    pub class: SiteClass,
    /// Generation profile.
    pub profile: SiteProfile,
    /// URL the crawler starts from.
    pub seed_url: String,
}

impl PharmacySite {
    /// The oracle label: `true` = legitimate.
    pub fn label(&self) -> bool {
        self.class.is_legitimate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_predicates() {
        assert!(SiteClass::Legitimate.is_legitimate());
        assert!(!SiteClass::Illegitimate.is_legitimate());
        assert_eq!(SiteClass::Legitimate.to_string(), "legitimate");
    }

    #[test]
    fn site_label_follows_class() {
        let site = PharmacySite {
            domain: "x.com".into(),
            class: SiteClass::Illegitimate,
            profile: SiteProfile::Standard,
            seed_url: "http://x.com/".into(),
        };
        assert!(!site.label());
    }

    #[test]
    fn serde_round_trip() {
        let site = PharmacySite {
            domain: "rx-hub1.com".into(),
            class: SiteClass::Illegitimate,
            profile: SiteProfile::AffiliateHub,
            seed_url: "http://rx-hub1.com/".into(),
        };
        let json = serde_json::to_string(&site).unwrap();
        let back: PharmacySite = serde_json::from_str(&json).unwrap();
        assert_eq!(site, back);
    }
}
