//! Synthetic pharmacy-web generator — the data substitute for the paper's
//! proprietary "PharmaVerComp" ground truth.
//!
//! The paper's evaluation (§6.1) uses two snapshots of a commercial
//! verifier's database, crawled six months apart: 167 legitimate
//! pharmacies in both, 1292 illegitimate pharmacies in snapshot 1 and a
//! *disjoint* 1275 in snapshot 2. Neither the labels nor the crawled HTML
//! are public, so this crate generates a web with the same *statistical
//! structure*:
//!
//! * class-conditional text: illegitimate sites over-use drug-spam terms
//!   ("viagra", "cialis", "no prescription" — §6.3.1), legitimate sites
//!   carry broader health content and store-presence vocabulary (§2.1);
//! * class-conditional links: the top-10 outbound targets per class follow
//!   Table 11, and illegitimate sites form affiliate hub networks
//!   (§6.3.2);
//! * the outlier populations of §6.4: illegitimate sites that mimic
//!   legitimate text and sit outside affiliate networks, and legitimate
//!   refill-only pharmacies with thin content;
//! * six-month drift: snapshot 2 keeps the legitimate domains, swaps in
//!   fresh illegitimate domains, and shifts the illegitimate vocabulary
//!   mixture (new spam terms unseen in snapshot 1), which reproduces the
//!   Old-New degradation pattern of Tables 16–17.
//!
//! Everything is driven by a single seed: the same `(config, seed)` pair
//! regenerates the same web, byte for byte.

pub mod attack;
pub mod generator;
pub mod persist;
pub mod shard;
pub mod site;
pub mod snapshot;
pub mod vocabulary;

pub use attack::{apply_attack, AttackConfig, AttackKind, AttackedSnapshot};
pub use generator::{CorpusConfig, SyntheticWeb};
pub use persist::{load_json_file, load_snapshot, save_json_file, save_snapshot, PersistError};
pub use shard::{domain_name, DomainRecord, ShardedWebGenerator, WebScaleConfig};
pub use site::{PharmacySite, SiteClass, SiteProfile};
pub use snapshot::{Snapshot, SnapshotStats};
