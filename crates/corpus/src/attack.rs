//! Adversarial mutations of a clean snapshot.
//!
//! The paper's verifier leans on link-based trust and class-conditional
//! text, and Abbasi et al. (PAPERS.md) document exactly how fake
//! pharmacies game such detectors: affiliate hubs and link farms aimed
//! at the trusted seed set, plus content that mimics legitimate sites.
//! This module turns those tactics into *seeded, parameterized* attack
//! generators so the bench harness can sweep attack strength and measure
//! how OPC/OPR degrade with the spam-mass defense off vs. on.
//!
//! Three attack families, all pure functions of `(snapshot, config,
//! seed)`:
//!
//! * **Link farm** ([`AttackKind::LinkFarm`]): inject hub/spoke farm
//!   sites and compromise a fraction of *legitimate* front pages with
//!   links into the farm (comment-spam style) — trust leaks from the
//!   seed set into the hubs, while the hubs' double-weighted boost
//!   links into the existing illegitimate corpus leave an anti-trust
//!   trail.
//! * **Cloaking** ([`AttackKind::Cloak`]): a fraction of illegitimate
//!   sites present legitimate *text* over an illegitimate link profile,
//!   or launder their *links* while keeping spam text — each evades one
//!   signal family but not both.
//! * **Mimicry** ([`AttackKind::Mimicry`]): every illegitimate site's
//!   token distribution is interpolated toward the legitimate centroid
//!   at strength λ — the slow-morphing vocabulary attack.
//!
//! Determinism contract: the same `(snapshot, config, seed)` triple
//! produces the same attacked snapshot byte for byte, and strength 0 is
//! a byte-identical no-op. Both claims are pinned by property tests.

use crate::generator::{base_mixture, paragraph, Mixture};
use crate::site::{PharmacySite, SiteClass, SiteProfile};
use crate::snapshot::Snapshot;
use crate::vocabulary as vocab;
use rand::rngs::SmallRng;
use rand::Rng;
use rand::SeedableRng;
use std::fmt;

/// Attack family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttackKind {
    /// Hub/spoke link farm aimed at the trusted seed set.
    LinkFarm,
    /// Text- or link-cloaked illegitimate sites.
    Cloak,
    /// Vocabulary interpolation toward the legitimate centroid.
    Mimicry,
}

impl AttackKind {
    /// Every attack kind, in CLI order.
    pub const ALL: [AttackKind; 3] = [AttackKind::LinkFarm, AttackKind::Cloak, AttackKind::Mimicry];

    /// Parses the CLI spelling (`link-farm`, `cloak`, `mimicry`).
    pub fn parse(s: &str) -> Option<AttackKind> {
        match s {
            "link-farm" => Some(AttackKind::LinkFarm),
            "cloak" => Some(AttackKind::Cloak),
            "mimicry" => Some(AttackKind::Mimicry),
            _ => None,
        }
    }
}

impl fmt::Display for AttackKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AttackKind::LinkFarm => "link-farm",
            AttackKind::Cloak => "cloak",
            AttackKind::Mimicry => "mimicry",
        })
    }
}

/// Attack parameters. `strength` is the λ every knob scales with; the
/// remaining fields are the per-family maxima reached at λ = 1.
#[derive(Debug, Clone)]
pub struct AttackConfig {
    /// Attack family.
    pub kind: AttackKind,
    /// Attack strength λ ∈ [0, 1]. Strength 0 is a byte-identical no-op.
    pub strength: f64,
    /// Link farm: hub count at λ = 1.
    pub max_hubs: usize,
    /// Link farm: spokes per hub at λ = 1.
    pub max_spokes_per_hub: usize,
    /// Link farm: fraction of legitimate front pages compromised with
    /// farm links at λ = 1 (seed-proximity knob — compromised pages are
    /// exactly the pages trust seeds propagate from).
    pub seed_targeting: f64,
    /// Cloak: fraction of illegitimate sites cloaked at λ = 1.
    pub cloak_fraction: f64,
    /// Farm-page body tokens, inclusive range.
    pub tokens_per_page: (usize, usize),
}

impl AttackConfig {
    /// An attack of `kind` at strength λ with the default knob maxima.
    pub fn new(kind: AttackKind, strength: f64) -> AttackConfig {
        AttackConfig {
            kind,
            strength,
            max_hubs: 4,
            max_spokes_per_hub: 6,
            seed_targeting: 0.6,
            cloak_fraction: 0.8,
            tokens_per_page: (30, 70),
        }
    }
}

/// An attacked snapshot plus the ground truth of what the attack did —
/// consumed by the defense invariants (farm nodes must carry more spam
/// mass than clean nodes) and by the bench report.
#[derive(Debug, Clone)]
pub struct AttackedSnapshot {
    /// The mutated snapshot. At strength 0 this is a byte-identical
    /// clone of the input.
    pub snapshot: Snapshot,
    /// Domains of *injected* farm sites (empty for cloak/mimicry).
    pub farm_domains: Vec<String>,
    /// The hub subset of [`Self::farm_domains`] — the laundering nodes
    /// that both receive compromised-site links and boost the spam
    /// network (empty for cloak/mimicry).
    pub hub_domains: Vec<String>,
    /// Pre-existing domains whose pages were rewritten: compromised
    /// legitimate sites for the link farm, cloaked or morphed
    /// illegitimate sites otherwise.
    pub mutated_domains: Vec<String>,
}

const FARM_SALT: u64 = 0xFA_3A;
const CLOAK_SALT: u64 = 0xC1_0A;
const MIMIC_SALT: u64 = 0x31_31;

/// Applies `config` to a clean snapshot. Pure function of
/// `(snapshot, config, seed)`; strength 0 returns a byte-identical
/// clone.
pub fn apply_attack(base: &Snapshot, config: &AttackConfig, seed: u64) -> AttackedSnapshot {
    let obs = pharmaverify_obs::global();
    let _span = obs.span("corpus/attack");
    let mut attacked = AttackedSnapshot {
        snapshot: base.clone(),
        farm_domains: Vec::new(),
        hub_domains: Vec::new(),
        mutated_domains: Vec::new(),
    };
    if !(config.strength > 0.0) {
        return attacked;
    }
    let lambda = config.strength.min(1.0);
    match config.kind {
        AttackKind::LinkFarm => link_farm(&mut attacked, config, lambda, seed),
        AttackKind::Cloak => cloak(&mut attacked, config, lambda, seed),
        AttackKind::Mimicry => mimicry(&mut attacked, lambda, seed),
    }
    obs.add("corpus/attacked_snapshots", 1);
    attacked
}

/// Per-entity rng: one independent stream per (salt, index), so adding
/// or skipping one entity never perturbs another's bytes.
fn entity_rng(seed: u64, salt: u64, index: usize) -> SmallRng {
    SmallRng::seed_from_u64(seed ^ salt ^ ((index as u64) << 16))
}

/// All crawlable page URLs of `domain`, in deterministic order.
fn site_pages(snapshot: &Snapshot, domain: &str) -> Vec<(String, String)> {
    let prefix = format!("http://{domain}/");
    snapshot
        .web
        .iter()
        .filter(|(url, _)| url.starts_with(&prefix))
        .map(|(url, html)| (url.to_string(), html.to_string()))
        .collect()
}

/// Rewrites every `<p>…</p>` line of `html` with fresh text drawn from
/// `mixture`, preserving the token count per paragraph and every other
/// line (titles, headings, links) byte for byte.
fn rewrite_paragraphs(
    html: &str,
    mixture: &Mixture,
    noise: &[String],
    rng: &mut SmallRng,
) -> String {
    let mut out = String::with_capacity(html.len());
    for (i, line) in html.lines().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        if let Some(body) = line
            .strip_prefix("<p>")
            .and_then(|rest| rest.strip_suffix("</p>"))
        {
            let tokens = body.split_whitespace().count();
            out.push_str("<p>");
            out.push_str(&paragraph(mixture, noise, None, 0.0, tokens, rng));
            out.push_str("</p>");
        } else {
            out.push_str(line);
        }
    }
    out
}

/// The legitimate text centroid all camouflage interpolates toward.
fn legitimate_centroid() -> Mixture {
    base_mixture(SiteClass::Legitimate, SiteProfile::Standard)
}

// ---------------------------------------------------------------- farm

fn link_farm(attacked: &mut AttackedSnapshot, config: &AttackConfig, lambda: f64, seed: u64) {
    let snap = &mut attacked.snapshot;
    let noise_pool = vocab::noise_pool(seed ^ FARM_SALT);
    let n_hubs = ((config.max_hubs as f64 * lambda).round() as usize).max(1);
    let spokes_per_hub = ((config.max_spokes_per_hub as f64 * lambda).round() as usize).max(1);

    // The farm's product: boost links into the existing illegitimate
    // corpus. A link farm exists to funnel laundered rank *into* the
    // spam network it serves, so every hub links a broad sample of the
    // known-bad sites (double-weighted — farms repeat their money
    // links). This is also the anti-trust trail the spam-mass defense
    // follows back into the farm: each boosted bad seed hands a share
    // of its distrust to the hubs pointing at it.
    let boost_pool: Vec<String> = snap
        .sites
        .iter()
        .filter(|s| !s.label())
        .map(|s| s.domain.clone())
        .collect();

    // Farm domains use a `.biz` suffix, disjoint from the generator's
    // `.com`/`.org` namespaces by construction.
    let hub_domains: Vec<String> = (0..n_hubs)
        .map(|i| {
            let mut rng = entity_rng(seed, FARM_SALT, i);
            format!("{}farm{i}.biz", vocab::pseudo_word(&mut rng))
        })
        .collect();
    let spoke_domains: Vec<String> = (0..n_hubs * spokes_per_hub)
        .map(|i| {
            let mut rng = entity_rng(seed, FARM_SALT.rotate_left(8), i);
            format!("{}spoke{i}.biz", vocab::pseudo_word(&mut rng))
        })
        .collect();

    let spam = base_mixture(SiteClass::Illegitimate, SiteProfile::Standard);
    let render_farm_page = |domain: &str, index: usize, targets: &[String]| {
        let mut rng = entity_rng(seed, FARM_SALT.rotate_left(16), index);
        let noise: Vec<String> = (0..8)
            .map(|_| noise_pool[rng.gen_range(0..noise_pool.len())].clone())
            .collect();
        let tokens = rng.gen_range(config.tokens_per_page.0..=config.tokens_per_page.1);
        let mut page =
            format!("<html><head><title>{domain}</title></head><body><h1>{domain}</h1>\n");
        page.push_str(&format!(
            "<p>{}</p>\n",
            paragraph(&spam, &noise, None, 0.0, tokens, &mut rng)
        ));
        for target in targets {
            page.push_str(&format!("<a href=\"http://{target}/\">partner site</a>\n"));
        }
        page.push_str("</body></html>");
        page
    };

    // Hubs: interlink the farm, add the usual illegitimate external
    // targets, then boost a contiguous (wrap-around) slice of half the
    // existing illegitimate corpus with double-weighted links.
    for (h, domain) in hub_domains.iter().enumerate() {
        let mut rng = entity_rng(seed, FARM_SALT.rotate_left(24), h);
        let mut targets: Vec<String> = hub_domains
            .iter()
            .filter(|d| *d != domain)
            .cloned()
            .collect();
        for _ in 0..rng.gen_range(1..=3) {
            targets.push(vocab::zipf_sample(vocab::ILLEGITIMATE_TARGETS, &mut rng).to_string());
        }
        targets.sort_unstable();
        targets.dedup();
        if !boost_pool.is_empty() {
            let n_boost = (boost_pool.len() / 2).max(1);
            let start = rng.gen_range(0..boost_pool.len());
            for k in 0..n_boost {
                let boosted = boost_pool[(start + k) % boost_pool.len()].clone();
                // Duplicates are deliberate: link weight doubles.
                targets.push(boosted.clone());
                targets.push(boosted);
            }
        }
        let html = render_farm_page(domain, h, &targets);
        snap.web.add_page(&format!("http://{domain}/"), html);
    }

    // Spokes: each boosts its hub (plus a sampled second hub) and keeps
    // one boost link into the existing network.
    for (s, domain) in spoke_domains.iter().enumerate() {
        let mut rng = entity_rng(seed, FARM_SALT.rotate_left(32), s);
        let mut targets: Vec<String> = vec![hub_domains[s % n_hubs].clone()];
        if n_hubs > 1 && rng.gen_bool(0.5) {
            targets.push(hub_domains[rng.gen_range(0..n_hubs)].clone());
        }
        if !boost_pool.is_empty() && rng.gen_bool(0.5) {
            targets.push(boost_pool[rng.gen_range(0..boost_pool.len())].clone());
        }
        targets.sort_unstable();
        targets.dedup();
        targets.retain(|t| t != domain);
        let html = render_farm_page(domain, n_hubs + s, &targets);
        snap.web.add_page(&format!("http://{domain}/"), html);
    }

    // Compromised legitimate front pages: the seed-proximity half of the
    // attack. A λ-scaled fraction of legitimate sites picks up injected
    // farm links (comment spam), so trust flows seed → farm.
    let legit_domains: Vec<String> = snap
        .sites
        .iter()
        .filter(|s| s.label())
        .map(|s| s.domain.clone())
        .collect();
    let n_compromised = ((legit_domains.len() as f64 * config.seed_targeting * lambda).round()
        as usize)
        .clamp(1, legit_domains.len());
    for (c, domain) in legit_domains.iter().take(n_compromised).enumerate() {
        let mut rng = entity_rng(seed, FARM_SALT.rotate_left(40), c);
        let url = format!("http://{domain}/");
        let Some((_, html)) = site_pages(snap, domain)
            .into_iter()
            .find(|(u, _)| *u == url)
        else {
            continue;
        };
        let Some(prefix) = html.strip_suffix("</body></html>") else {
            continue;
        };
        let mut page = prefix.to_string();
        for _ in 0..rng.gen_range(1..=2.min(hub_domains.len())) {
            let hub = &hub_domains[rng.gen_range(0..hub_domains.len())];
            page.push_str(&format!("<a href=\"http://{hub}/\">partner site</a>\n"));
        }
        page.push_str("</body></html>");
        snap.web.add_page(&url, page);
        attacked.mutated_domains.push(domain.clone());
    }

    // Farm sites join the labelled corpus (they are pharmacies a
    // verifier would be asked about), hubs first, then spokes.
    for domain in hub_domains.iter() {
        snap.sites.push(PharmacySite {
            domain: domain.clone(),
            class: SiteClass::Illegitimate,
            profile: SiteProfile::AffiliateHub,
            seed_url: format!("http://{domain}/"),
        });
    }
    for domain in spoke_domains.iter() {
        snap.sites.push(PharmacySite {
            domain: domain.clone(),
            class: SiteClass::Illegitimate,
            profile: SiteProfile::Standard,
            seed_url: format!("http://{domain}/"),
        });
    }
    attacked.hub_domains = hub_domains.clone();
    attacked.farm_domains = hub_domains;
    attacked.farm_domains.extend(spoke_domains);
}

// --------------------------------------------------------------- cloak

fn cloak(attacked: &mut AttackedSnapshot, config: &AttackConfig, lambda: f64, seed: u64) {
    let snap = &mut attacked.snapshot;
    let noise_pool = vocab::noise_pool(seed ^ CLOAK_SALT);
    let legit = legitimate_centroid();
    let victims: Vec<String> = snap
        .sites
        .iter()
        .filter(|s| !s.label())
        .map(|s| s.domain.clone())
        .collect();
    for (i, domain) in victims.iter().enumerate() {
        let mut rng = entity_rng(seed, CLOAK_SALT, i);
        if !rng.gen_bool(config.cloak_fraction * lambda) {
            continue;
        }
        let text_cloak = rng.gen_bool(0.5);
        let noise: Vec<String> = (0..8)
            .map(|_| noise_pool[rng.gen_range(0..noise_pool.len())].clone())
            .collect();
        for (url, html) in site_pages(snap, domain) {
            let rewritten = if text_cloak {
                // Legitimate text over the untouched illegitimate link
                // profile.
                rewrite_paragraphs(&html, &legit, &noise, &mut rng)
            } else {
                // Laundered links under untouched spam text: external
                // links are replaced by a legitimate-looking profile.
                launder_links(&html, &mut rng)
            };
            snap.web.add_page(&url, rewritten);
        }
        attacked.mutated_domains.push(domain.clone());
    }
}

/// Replaces every absolute (external) link of `html` with links drawn
/// from the legitimate target profile; internal navigation links are
/// relative and survive untouched.
fn launder_links(html: &str, rng: &mut SmallRng) -> String {
    let mut out = String::with_capacity(html.len());
    let mut laundered = 0usize;
    for (i, line) in html.lines().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        if line.starts_with("<a href=\"http://") {
            let target = vocab::zipf_sample(vocab::LEGITIMATE_TARGETS, rng);
            out.push_str(&format!("<a href=\"http://{target}/\">partner site</a>"));
            laundered += 1;
        } else {
            out.push_str(line);
        }
    }
    // A cloaked site with no external links at all would be its own
    // tell; guarantee at least one legitimate-profile link.
    if laundered == 0 {
        if let Some(prefix) = out.strip_suffix("</body></html>") {
            let target = vocab::zipf_sample(vocab::LEGITIMATE_TARGETS, rng);
            let mut page = prefix.to_string();
            page.push_str(&format!("<a href=\"http://{target}/\">partner site</a>\n"));
            page.push_str("</body></html>");
            return page;
        }
    }
    out
}

// ------------------------------------------------------------- mimicry

fn mimicry(attacked: &mut AttackedSnapshot, lambda: f64, seed: u64) {
    let snap = &mut attacked.snapshot;
    let noise_pool = vocab::noise_pool(seed ^ MIMIC_SALT);
    let legit = legitimate_centroid();
    let spam = base_mixture(SiteClass::Illegitimate, SiteProfile::Standard);
    // The morphed distribution: (1−λ)·illegitimate + λ·legitimate. Both
    // inputs are normalized, so the convex combination is too.
    let mut morphed: Mixture = [0.0; 5];
    for (m, (&s, &l)) in morphed.iter_mut().zip(spam.iter().zip(legit.iter())) {
        *m = (1.0 - lambda) * s + lambda * l;
    }
    let victims: Vec<String> = snap
        .sites
        .iter()
        .filter(|s| !s.label())
        .map(|s| s.domain.clone())
        .collect();
    for (i, domain) in victims.iter().enumerate() {
        let mut rng = entity_rng(seed, MIMIC_SALT, i);
        let noise: Vec<String> = (0..8)
            .map(|_| noise_pool[rng.gen_range(0..noise_pool.len())].clone())
            .collect();
        for (url, html) in site_pages(snap, domain) {
            let rewritten = rewrite_paragraphs(&html, &morphed, &noise, &mut rng);
            snap.web.add_page(&url, rewritten);
        }
        attacked.mutated_domains.push(domain.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{CorpusConfig, SyntheticWeb};

    fn clean() -> Snapshot {
        SyntheticWeb::generate(&CorpusConfig::small(), 42)
            .snapshot()
            .clone()
    }

    fn web_bytes(s: &Snapshot) -> Vec<(String, String)> {
        s.web
            .iter()
            .map(|(u, h)| (u.to_string(), h.to_string()))
            .collect()
    }

    #[test]
    fn kind_parse_round_trips() {
        for kind in AttackKind::ALL {
            assert_eq!(AttackKind::parse(&kind.to_string()), Some(kind));
        }
        assert_eq!(AttackKind::parse("ddos"), None);
    }

    #[test]
    fn strength_zero_is_byte_identical_noop() {
        let base = clean();
        for kind in AttackKind::ALL {
            let out = apply_attack(&base, &AttackConfig::new(kind, 0.0), 7);
            assert_eq!(web_bytes(&out.snapshot), web_bytes(&base));
            assert_eq!(out.snapshot.sites, base.sites);
            assert!(out.farm_domains.is_empty());
            assert!(out.hub_domains.is_empty());
            assert!(out.mutated_domains.is_empty());
        }
    }

    #[test]
    fn attacks_are_deterministic_in_seed_and_params() {
        let base = clean();
        for kind in AttackKind::ALL {
            let cfg = AttackConfig::new(kind, 0.7);
            let a = apply_attack(&base, &cfg, 11);
            let b = apply_attack(&base, &cfg, 11);
            assert_eq!(web_bytes(&a.snapshot), web_bytes(&b.snapshot));
            assert_eq!(a.snapshot.sites, b.snapshot.sites);
            assert_eq!(a.farm_domains, b.farm_domains);
            assert_eq!(a.hub_domains, b.hub_domains);
            assert_eq!(a.mutated_domains, b.mutated_domains);
            let c = apply_attack(&base, &cfg, 12);
            assert_ne!(web_bytes(&a.snapshot), web_bytes(&c.snapshot));
        }
    }

    #[test]
    fn link_farm_injects_labelled_farm_and_compromises_seeds() {
        let base = clean();
        let out = apply_attack(&base, &AttackConfig::new(AttackKind::LinkFarm, 1.0), 3);
        assert!(!out.farm_domains.is_empty());
        assert!(!out.hub_domains.is_empty());
        assert!(out.hub_domains.iter().all(|h| out.farm_domains.contains(h)));
        assert_eq!(
            out.snapshot.sites.len(),
            base.sites.len() + out.farm_domains.len()
        );
        for domain in &out.farm_domains {
            assert_eq!(out.snapshot.oracle(domain), Some(false), "{domain}");
            assert!(domain.ends_with(".biz"));
        }
        // Compromised legitimate front pages link into the farm.
        assert!(!out.mutated_domains.is_empty());
        let hub = &out.farm_domains[0];
        let compromised = &out.mutated_domains[0];
        let page = out
            .snapshot
            .web
            .iter()
            .find(|(u, _)| *u == format!("http://{compromised}/"))
            .map(|(_, h)| h.to_string())
            .unwrap();
        let links_to_farm = out
            .farm_domains
            .iter()
            .any(|d| page.contains(&format!("http://{d}/")));
        assert!(links_to_farm, "{compromised} must link into the farm");
        assert_eq!(
            out.snapshot.oracle(compromised),
            Some(true),
            "compromised sites stay legitimate"
        );
        let _ = hub;
    }

    #[test]
    fn link_farm_scales_with_strength() {
        let base = clean();
        let weak = apply_attack(&base, &AttackConfig::new(AttackKind::LinkFarm, 0.25), 3);
        let strong = apply_attack(&base, &AttackConfig::new(AttackKind::LinkFarm, 1.0), 3);
        assert!(strong.farm_domains.len() > weak.farm_domains.len());
        assert!(strong.mutated_domains.len() >= weak.mutated_domains.len());
    }

    #[test]
    fn cloak_rewrites_only_illegitimate_sites() {
        let base = clean();
        let out = apply_attack(&base, &AttackConfig::new(AttackKind::Cloak, 1.0), 5);
        assert!(out.farm_domains.is_empty());
        assert!(!out.mutated_domains.is_empty());
        for domain in &out.mutated_domains {
            assert_eq!(out.snapshot.oracle(domain), Some(false), "{domain}");
        }
        // Site metadata is untouched; only page bytes change.
        assert_eq!(out.snapshot.sites, base.sites);
        assert_ne!(web_bytes(&out.snapshot), web_bytes(&base));
    }

    #[test]
    fn mimicry_morphs_text_but_preserves_links() {
        let base = clean();
        let out = apply_attack(&base, &AttackConfig::new(AttackKind::Mimicry, 0.9), 5);
        assert_eq!(out.snapshot.sites, base.sites);
        let base_pages: std::collections::BTreeMap<String, String> =
            web_bytes(&base).into_iter().collect();
        for (url, html) in out.snapshot.web.iter() {
            let original = &base_pages[url];
            let links = |h: &str| {
                h.lines()
                    .filter(|l| l.starts_with("<a href="))
                    .map(str::to_string)
                    .collect::<Vec<_>>()
            };
            assert_eq!(links(html), links(original), "links changed on {url}");
        }
        assert_ne!(web_bytes(&out.snapshot), web_bytes(&base));
    }

    #[test]
    fn mimicry_at_full_strength_reduces_spam_vocabulary() {
        let base = clean();
        let out = apply_attack(&base, &AttackConfig::new(AttackKind::Mimicry, 1.0), 5);
        let spam_count = |s: &Snapshot| {
            s.web
                .iter()
                .map(|(_, h)| h.matches("viagra").count())
                .sum::<usize>()
        };
        assert!(
            spam_count(&out.snapshot) < spam_count(&base) / 2,
            "morphed corpus must shed most spam terms: {} vs {}",
            spam_count(&out.snapshot),
            spam_count(&base)
        );
    }

    #[test]
    fn attacked_sites_stay_crawlable() {
        use pharmaverify_crawl::{CrawlConfig, Crawler, Url};
        let base = clean();
        let out = apply_attack(&base, &AttackConfig::new(AttackKind::LinkFarm, 1.0), 9);
        let crawler = Crawler::new(CrawlConfig::default());
        for domain in &out.farm_domains {
            let url = Url::parse(&format!("http://{domain}/")).unwrap();
            let crawl = crawler.crawl(&out.snapshot.web, &url);
            assert!(crawl.page_count() >= 1, "farm site {domain} not crawlable");
        }
    }
}
