//! Class-conditional vocabularies.
//!
//! Word pools modelled on the signals the paper reports: illegitimate
//! pharmacies over-use hard-sell drug-spam vocabulary, legitimate ones
//! carry broader health content and "store presence" features (contact,
//! policies, insurance, verification seals — §2.1, §6.3.1). A separate
//! *drift* pool simulates the spam vocabulary churn between the two
//! crawls. Within each pool, sampling is Zipf-weighted so term-frequency
//! profiles look like natural language.

use rand::rngs::SmallRng;
use rand::Rng;

/// Health-domain vocabulary shared by both classes.
pub const SHARED_HEALTH: &[&str] = &[
    "medication",
    "dosage",
    "tablet",
    "capsule",
    "treatment",
    "symptom",
    "doctor",
    "patient",
    "health",
    "medicine",
    "drug",
    "therapy",
    "clinical",
    "generic",
    "brand",
    "pain",
    "relief",
    "allergy",
    "infection",
    "antibiotic",
    "blood",
    "pressure",
    "diabetes",
    "heart",
    "cholesterol",
    "vitamin",
    "supplement",
    "skin",
    "care",
    "daily",
    "effects",
    "side",
    "warning",
    "label",
    "active",
    "ingredient",
    "strength",
    "oral",
    "cream",
    "ointment",
    "injection",
    "asthma",
    "inhaler",
    "migraine",
    "arthritis",
    "depression",
    "anxiety",
    "sleep",
    "insomnia",
    "thyroid",
    "hormone",
    "cancer",
    "screening",
    "vaccine",
    "flu",
    "cold",
    "cough",
    "fever",
    "nausea",
    "digestive",
    "stomach",
    "liver",
    "kidney",
    "chronic",
    "acute",
    "condition",
    "disease",
    "wellness",
    "nutrition",
    "diet",
    "exercise",
    "weight",
    "smoking",
    "cessation",
    "first",
    "aid",
    "bandage",
    "thermometer",
    "monitor",
    "glucose",
    "test",
    "strip",
    "pediatric",
    "senior",
    "pregnancy",
    "children",
    "adult",
    "tablets",
    "dose",
    "missed",
    "overdose",
    "storage",
    "expiry",
    "interactions",
    "contraindications",
    "hypertension",
    "cardiology",
];

/// Store-presence and trust vocabulary characteristic of legitimate
/// pharmacies.
pub const LEGITIMATE_STORE: &[&str] = &[
    "prescription",
    "pharmacist",
    "licensed",
    "refill",
    "transfer",
    "insurance",
    "copay",
    "coverage",
    "medicare",
    "medicaid",
    "consultation",
    "verified",
    "accredited",
    "vipps",
    "seal",
    "privacy",
    "policy",
    "terms",
    "contact",
    "address",
    "phone",
    "hours",
    "location",
    "store",
    "pickup",
    "delivery",
    "account",
    "profile",
    "history",
    "records",
    "physician",
    "provider",
    "network",
    "formulary",
    "counseling",
    "immunization",
    "flu",
    "shots",
    "compounding",
    "specialty",
    "faq",
    "support",
    "secure",
    "hipaa",
    "confidential",
    "notice",
    "state",
    "board",
    "regulation",
    "compliance",
    "registered",
    "credential",
];

/// Hard-sell spam vocabulary characteristic of illegitimate pharmacies.
pub const ILLEGITIMATE_SPAM: &[&str] = &[
    "viagra",
    "cialis",
    "levitra",
    "cheap",
    "cheapest",
    "discount",
    "bonus",
    "pills",
    "free",
    "shipping",
    "worldwide",
    "order",
    "now",
    "buy",
    "online",
    "without",
    "prescription",
    "needed",
    "required",
    "overnight",
    "express",
    "guaranteed",
    "lowest",
    "price",
    "prices",
    "offer",
    "deal",
    "save",
    "sale",
    "bestsellers",
    "soft",
    "super",
    "professional",
    "generic",
    "brand",
    "xanax",
    "valium",
    "tramadol",
    "phentermine",
    "ambien",
    "soma",
    "anonymous",
    "discreet",
    "packaging",
    "visa",
    "mastercard",
    "echeck",
    "wire",
    "moneyback",
    "refund",
    "trial",
    "pack",
    "mg",
    "pill",
    "per",
];

/// Spam vocabulary that only appears in the *second* snapshot — the
/// six-month churn of illegitimate marketing language.
pub const DRIFT_SPAM: &[&str] = &[
    "kamagra",
    "tadalafil",
    "sildenafil",
    "vardenafil",
    "dapoxetine",
    "modafinil",
    "bitcoin",
    "crypto",
    "telegram",
    "whatsapp",
    "stealth",
    "reship",
    "vendor",
    "reviews",
    "trusted",
    "original",
    "quality",
    "bulk",
    "wholesale",
    "coupon",
    "promo",
    "code",
    "flash",
    "clearance",
    "megadeal",
    "hotsale",
    "instant",
    "checkout",
    "cart",
    "combo",
];

/// The thin vocabulary of refill-only legitimate pharmacies — the
/// legitimate *outliers* of §6.4 ("the majority of them simply give the
/// possibility to refill existing prescriptions").
pub const REFILL_ONLY: &[&str] = &[
    "refill",
    "prescription",
    "number",
    "enter",
    "submit",
    "ready",
    "pickup",
    "notify",
    "reminder",
    "autofill",
    "transfer",
    "existing",
    "login",
    "account",
    "password",
];

/// Outbound-link targets of legitimate pharmacies, most-linked first
/// (Table 11, left column).
pub const LEGITIMATE_TARGETS: &[&str] = &[
    "facebook.com",
    "twitter.com",
    "fda.gov",
    "google.com",
    "youtube.com",
    "nih.gov",
    "adobe.com",
    "cdc.gov",
    "doubleclick.net",
    "nabp.net",
];

/// Outbound-link targets of illegitimate pharmacies, most-linked first
/// (Table 11, right column). `rxwinners.com` and the med-store domains are
/// themselves illegitimate pharmacies — the affiliate-network signal.
pub const ILLEGITIMATE_TARGETS: &[&str] = &[
    "wikipedia.org",
    "wordpress.org",
    "drugs.com",
    "securebilling-page.com",
    "rxwinners.com",
    "google.com",
    "providesupport.com",
    "euro-med-store.com",
    "statcounter.com",
    "cipla.com",
];

/// Zipf-weighted sampling from a word pool: word at rank `r` (0-based) is
/// drawn with probability ∝ 1/(r+1).
pub fn zipf_sample<'a>(pool: &[&'a str], rng: &mut SmallRng) -> &'a str {
    debug_assert!(!pool.is_empty());
    // Inverse-CDF sampling over harmonic weights via linear scan would be
    // O(n); instead use the standard rejection-free trick: u ~ U(0, H_n),
    // then find the rank by cumulative harmonic sums. Pools are small
    // (≤ ~120), so a scan is fast and exact.
    let h: f64 = (1..=pool.len()).map(|r| 1.0 / r as f64).sum();
    let mut u = rng.gen_range(0.0..h);
    for (r, word) in pool.iter().enumerate() {
        u -= 1.0 / (r + 1) as f64;
        if u <= 0.0 {
            return word;
        }
    }
    pool[pool.len() - 1]
}

/// Size of the shared long-tail noise vocabulary. Sites sample their
/// filler words from one global pool (as real sites share the language's
/// long tail) rather than inventing fully private vocabularies — a
/// private per-site vocabulary would inflate the corpus type count and
/// distort Laplace smoothing in the multinomial naive Bayes.
pub const NOISE_POOL_SIZE: usize = 600;

/// The shared long-tail noise pool, generated deterministically from a
/// seed. Duplicates are filtered, so the pool can be slightly smaller
/// than [`NOISE_POOL_SIZE`].
pub fn noise_pool(seed: u64) -> Vec<String> {
    use rand::SeedableRng;
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x7015e);
    let mut pool: Vec<String> = (0..NOISE_POOL_SIZE)
        .map(|_| pseudo_word(&mut rng))
        .collect();
    pool.sort_unstable();
    pool.dedup();
    pool
}

/// Deterministic pseudo-word generator for filler vocabulary (product
/// names, brand strings): alternating consonant-vowel syllables derived
/// from the RNG.
pub fn pseudo_word(rng: &mut SmallRng) -> String {
    const CONSONANTS: &[u8] = b"bcdfghklmnprstvz";
    const VOWELS: &[u8] = b"aeiou";
    let syllables = rng.gen_range(2..=4);
    let mut word = String::with_capacity(syllables * 2);
    for _ in 0..syllables {
        word.push(CONSONANTS[rng.gen_range(0..CONSONANTS.len())] as char);
        word.push(VOWELS[rng.gen_range(0..VOWELS.len())] as char);
    }
    word
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn pools_are_nonempty_and_lowercase() {
        for pool in [
            SHARED_HEALTH,
            LEGITIMATE_STORE,
            ILLEGITIMATE_SPAM,
            DRIFT_SPAM,
            REFILL_ONLY,
        ] {
            assert!(!pool.is_empty());
            for w in pool {
                assert_eq!(*w, w.to_lowercase(), "{w} must be lowercase");
                assert!(!w.is_empty());
            }
        }
    }

    #[test]
    fn target_lists_match_table_11() {
        assert_eq!(LEGITIMATE_TARGETS.len(), 10);
        assert_eq!(ILLEGITIMATE_TARGETS.len(), 10);
        assert_eq!(LEGITIMATE_TARGETS[2], "fda.gov");
        assert_eq!(ILLEGITIMATE_TARGETS[0], "wikipedia.org");
    }

    #[test]
    fn drift_pool_disjoint_from_snapshot1_spam() {
        for w in DRIFT_SPAM {
            assert!(
                !ILLEGITIMATE_SPAM.contains(w),
                "{w} must be new in snapshot 2"
            );
        }
    }

    #[test]
    fn zipf_prefers_early_ranks() {
        let mut rng = SmallRng::seed_from_u64(1);
        let pool = &["first", "second", "third", "fourth", "fifth"][..];
        let mut counts = [0usize; 5];
        for _ in 0..10_000 {
            let w = zipf_sample(pool, &mut rng);
            counts[pool.iter().position(|x| x == &w).unwrap()] += 1;
        }
        assert!(counts[0] > counts[1]);
        assert!(counts[1] > counts[3]);
    }

    #[test]
    fn pseudo_words_deterministic_and_alphabetic() {
        let mut a = SmallRng::seed_from_u64(9);
        let mut b = SmallRng::seed_from_u64(9);
        for _ in 0..20 {
            let wa = pseudo_word(&mut a);
            let wb = pseudo_word(&mut b);
            assert_eq!(wa, wb);
            assert!(wa.chars().all(|c| c.is_ascii_lowercase()));
            assert!(wa.len() >= 4);
        }
    }
}
