//! The synthetic-web generator.
//!
//! Generation is two-level: site *metadata* (domain, class, profile) is
//! drawn first, then each site's pages are rendered as HTML with
//! class-conditional text and links. The legitimate metadata is shared
//! between the two snapshots (the paper's datasets "contain the same
//! legitimate instances, but crawled in different periods of time"),
//! while illegitimate domains are disjoint between snapshots.

use crate::site::{PharmacySite, SiteClass, SiteProfile};
use crate::snapshot::Snapshot;
use crate::vocabulary as vocab;
use pharmaverify_crawl::InMemoryWeb;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;

/// Generation parameters.
#[derive(Debug, Clone)]
pub struct CorpusConfig {
    /// Legitimate pharmacies (both snapshots; paper: 167).
    pub n_legitimate: usize,
    /// Illegitimate pharmacies in snapshot 1 (paper: 1292).
    pub n_illegitimate_snapshot1: usize,
    /// Illegitimate pharmacies in snapshot 2, disjoint from snapshot 1
    /// (paper: 1275).
    pub n_illegitimate_snapshot2: usize,
    /// Pages per site, inclusive range.
    pub pages_per_site: (usize, usize),
    /// Body tokens per page, inclusive range.
    pub tokens_per_page: (usize, usize),
    /// Fraction of illegitimate sites that mimic legitimate content and
    /// stay out of affiliate networks (§6.4's illegitimate outliers).
    pub mimic_fraction: f64,
    /// Fraction of legitimate sites that are thin refill-only storefronts
    /// (§6.4's legitimate outliers).
    pub refill_only_fraction: f64,
    /// Number of illegitimate affiliate-hub sites per snapshot.
    pub affiliate_hubs: usize,
    /// Site-specific pseudo-word vocabulary size (product names etc.).
    pub site_noise_words: usize,
    /// Fraction of snapshot-2 illegitimate spam mass drawn from the
    /// drifted vocabulary ([`vocab::DRIFT_SPAM`]).
    pub drift: f64,
    /// Non-pharmacy health portals that link to legitimate pharmacies
    /// (directory listings). Ignored by the paper's own experiments; used
    /// by the §7 future-work extension.
    pub health_portals: usize,
}

impl CorpusConfig {
    /// The paper-scale configuration: Table 1's class counts, moderate
    /// page counts (the crawler's 200-page cap is never the binding
    /// constraint for the synthetic sites).
    pub fn paper() -> Self {
        CorpusConfig {
            n_legitimate: 167,
            n_illegitimate_snapshot1: 1292,
            n_illegitimate_snapshot2: 1275,
            pages_per_site: (4, 18),
            tokens_per_page: (40, 110),
            mimic_fraction: 0.04,
            refill_only_fraction: 0.12,
            affiliate_hubs: 15,
            site_noise_words: 12,
            drift: 0.35,
            health_portals: 25,
        }
    }

    /// A mid-size configuration (~1/4 of paper scale) for quick
    /// experiments and examples.
    pub fn medium() -> Self {
        CorpusConfig {
            n_legitimate: 42,
            n_illegitimate_snapshot1: 320,
            n_illegitimate_snapshot2: 318,
            affiliate_hubs: 6,
            health_portals: 8,
            ..CorpusConfig::paper()
        }
    }

    /// A tiny configuration for unit and integration tests.
    pub fn small() -> Self {
        CorpusConfig {
            n_legitimate: 12,
            n_illegitimate_snapshot1: 48,
            n_illegitimate_snapshot2: 48,
            pages_per_site: (2, 5),
            tokens_per_page: (25, 60),
            mimic_fraction: 0.08,
            refill_only_fraction: 0.15,
            affiliate_hubs: 3,
            site_noise_words: 6,
            drift: 0.5,
            health_portals: 3,
        }
    }
}

/// The generated web: two labelled snapshots six (virtual) months apart.
///
/// # Examples
///
/// ```
/// use pharmaverify_corpus::{CorpusConfig, SyntheticWeb};
///
/// let web = SyntheticWeb::generate(&CorpusConfig::small(), 7);
/// let stats = web.snapshot().stats();
/// assert_eq!(stats.legitimate, 12);
/// assert_eq!(stats.illegitimate, 48);
/// // Deterministic: same seed, same web.
/// let again = SyntheticWeb::generate(&CorpusConfig::small(), 7);
/// assert_eq!(again.snapshot().web.len(), web.snapshot().web.len());
/// ```
#[derive(Debug, Clone)]
pub struct SyntheticWeb {
    snapshot1: Snapshot,
    snapshot2: Snapshot,
}

impl SyntheticWeb {
    /// Generates both snapshots from a single seed.
    pub fn generate(config: &CorpusConfig, seed: u64) -> Self {
        let obs = pharmaverify_obs::global();
        let _span = obs.span("corpus/generate");
        obs.add("corpus/generated_webs", 1);
        obs.set_gauge(
            "corpus/sites_per_snapshot",
            (config.n_legitimate + config.n_illegitimate_snapshot1) as i64,
        );
        let mut meta_rng = SmallRng::seed_from_u64(seed);
        let legit_meta = legitimate_metadata(config, &mut meta_rng);
        let illegit_meta1 =
            illegitimate_metadata(config, config.n_illegitimate_snapshot1, 0, &mut meta_rng);
        let illegit_meta2 = illegitimate_metadata(
            config,
            config.n_illegitimate_snapshot2,
            config.n_illegitimate_snapshot1,
            &mut meta_rng,
        );
        // One shared long-tail vocabulary for both snapshots: the
        // language does not change between the two crawls, only the
        // sites' content does.
        let noise_pool = vocab::noise_pool(seed);
        let snapshot1 = build_snapshot(
            config,
            "Dataset 1",
            &legit_meta,
            &illegit_meta1,
            &noise_pool,
            seed ^ 0xD1,
            0.0,
        );
        let snapshot2 = build_snapshot(
            config,
            "Dataset 2",
            &legit_meta,
            &illegit_meta2,
            &noise_pool,
            seed ^ 0xD2,
            config.drift,
        );
        SyntheticWeb {
            snapshot1,
            snapshot2,
        }
    }

    /// Dataset 1 — the base snapshot of the paper's experiments.
    pub fn snapshot(&self) -> &Snapshot {
        &self.snapshot1
    }

    /// Dataset 2 — crawled "six months later".
    pub fn snapshot2(&self) -> &Snapshot {
        &self.snapshot2
    }
}

/// Per-token category mixture: `[shared, store, spam, refill, noise]`.
pub(crate) type Mixture = [f64; 5];

pub(crate) fn base_mixture(class: SiteClass, profile: SiteProfile) -> Mixture {
    // Both classes draw from every pool — legitimate pharmacies also sell
    // the spam-listed drugs and illegitimate ones imitate store-presence
    // language — so no single token is a shibboleth; only the frequency
    // profile separates the classes, as in the real data (§6.3.1).
    // Mimic outliers start from the *legitimate* profile; their graded
    // spam bump is added per site in [`site_mixture`].
    match (class, profile) {
        (SiteClass::Legitimate, SiteProfile::RefillOnly) => [0.35, 0.06, 0.02, 0.12, 0.45],
        (SiteClass::Legitimate, _) | (SiteClass::Illegitimate, SiteProfile::MimicOutlier) => {
            [0.43, 0.28, 0.07, 0.06, 0.16]
        }
        (SiteClass::Illegitimate, _) => [0.36, 0.12, 0.30, 0.04, 0.18],
    }
}

/// Site-level heterogeneity: each category weight is scaled by
/// 2^U(−J, J), then the mixture is renormalized. This is what keeps the
/// class clouds from separating perfectly at large term counts — sites of
/// the same class differ in emphasis, as real storefronts do.
const MIXTURE_JITTER_LOG2: f64 = 0.45;

fn site_mixture(class: SiteClass, profile: SiteProfile, rng: &mut SmallRng) -> Mixture {
    let mut m = base_mixture(class, profile);
    for w in &mut m {
        if *w > 0.0 {
            *w *= (rng.gen_range(-MIXTURE_JITTER_LOG2..MIXTURE_JITTER_LOG2)).exp2();
        }
    }
    if profile == SiteProfile::MimicOutlier {
        // Graded camouflage: mimics carry a small but non-zero spam bump —
        // enough for a discriminative model with many terms, hard for a
        // subsampled document or a biased model.
        let extra = rng.gen_range(0.04..0.12);
        m[0] = (m[0] - extra).max(0.01);
        m[2] += extra;
    }
    let total: f64 = m.iter().sum();
    for w in &mut m {
        *w /= total;
    }
    m
}

struct SiteMeta {
    domain: String,
    class: SiteClass,
    profile: SiteProfile,
    /// Indices (into the legitimate metadata list) of partner pharmacies
    /// this site links to. Only populated for standard legitimate sites.
    partners: Vec<usize>,
}

fn legitimate_metadata(config: &CorpusConfig, rng: &mut SmallRng) -> Vec<SiteMeta> {
    let n = config.n_legitimate;
    let n_refill = ((n as f64) * config.refill_only_fraction).round() as usize;
    let mut profiles: Vec<SiteProfile> = (0..n)
        .map(|i| {
            if i < n_refill {
                SiteProfile::RefillOnly
            } else {
                SiteProfile::Standard
            }
        })
        .collect();
    profiles.shuffle(rng);
    let mut metas: Vec<SiteMeta> = profiles
        .into_iter()
        .enumerate()
        .map(|(i, profile)| SiteMeta {
            // Domain names are neutral pseudo-words for *both* classes:
            // a class-revealing name would leak the label into the page
            // titles and headings that echo the domain.
            domain: format!("{}{}.com", vocab::pseudo_word(rng), i),
            class: SiteClass::Legitimate,
            profile,
            partners: Vec::new(),
        })
        .collect();
    // Standard legitimate pharmacies cross-link ("verified partner"
    // listings), which is what lets TrustRank reach unseen legitimate
    // sites. Refill-only sites stay isolated.
    let standard: Vec<usize> = metas
        .iter()
        .enumerate()
        .filter(|(_, m)| m.profile == SiteProfile::Standard)
        .map(|(i, _)| i)
        .collect();
    for &i in &standard {
        if standard.len() < 2 || rng.gen_bool(0.10) {
            continue; // a minority of legitimate sites has no partners
        }
        let k = rng.gen_range(2..=4.min(standard.len() - 1));
        let mut choices: Vec<usize> = standard.iter().copied().filter(|&j| j != i).collect();
        choices.shuffle(rng);
        choices.truncate(k);
        metas[i].partners = choices;
    }
    metas
}

fn illegitimate_metadata(
    config: &CorpusConfig,
    count: usize,
    domain_offset: usize,
    rng: &mut SmallRng,
) -> Vec<SiteMeta> {
    let n_hubs = config.affiliate_hubs.min(count);
    let n_mimic = ((count as f64) * config.mimic_fraction).round() as usize;
    let mut profiles: Vec<SiteProfile> = (0..count)
        .map(|i| {
            if i < n_hubs {
                SiteProfile::AffiliateHub
            } else if i < n_hubs + n_mimic {
                SiteProfile::MimicOutlier
            } else {
                SiteProfile::Standard
            }
        })
        .collect();
    // Keep hubs at fixed positions (their domains are link targets) but
    // shuffle mimic/standard assignment.
    profiles[n_hubs..].shuffle(rng);
    profiles
        .into_iter()
        .enumerate()
        .map(|(i, profile)| {
            let idx = domain_offset + i;
            SiteMeta {
                // Same neutral naming scheme as the legitimate sites; the
                // `x` infix keeps the two snapshots' domains disjoint from
                // the legitimate namespace.
                domain: format!("{}x{idx}.com", vocab::pseudo_word(rng)),
                class: SiteClass::Illegitimate,
                profile,
                partners: Vec::new(),
            }
        })
        .collect()
}

/// Renders the non-pharmacy health portals: directory-style pages of
/// health content linking to a sample of (standard) legitimate pharmacies
/// and to trusted institutions. Returns the portal domains.
/// Deterministic portal domain names, needed *before* pharmacy pages are
/// rendered so that legitimate sites can link to the portals (which is
/// what lets trust flow seed → portal → unseen pharmacy).
fn portal_domains(config: &CorpusConfig, seed: u64) -> Vec<String> {
    (0..config.health_portals)
        .map(|p| {
            let mut rng = SmallRng::seed_from_u64(seed ^ 0x9047A1 ^ ((p as u64) << 20));
            format!("{}health{p}.org", vocab::pseudo_word(&mut rng))
        })
        .collect()
}

fn render_portals(
    config: &CorpusConfig,
    legit: &[SiteMeta],
    domains: &[String],
    noise_pool: &[String],
    seed: u64,
    web: &mut InMemoryWeb,
) {
    let standard: Vec<&SiteMeta> = legit
        .iter()
        .filter(|m| m.profile == SiteProfile::Standard)
        .collect();
    for (p, domain) in domains.iter().enumerate() {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x90_47_A2 ^ ((p as u64) << 20));
        // Portals write editorial health content: shared vocabulary plus
        // long-tail noise, no storefront or spam language.
        let mixture: Mixture = [0.70, 0.05, 0.0, 0.0, 0.25];
        let noise: Vec<String> = (0..config.site_noise_words.max(1))
            .map(|_| noise_pool[rng.gen_range(0..noise_pool.len())].clone())
            .collect();
        let mut listed: Vec<&str> = Vec::new();
        if !standard.is_empty() {
            let count = rng.gen_range(3..=8.min(standard.len()));
            for _ in 0..count {
                listed.push(standard[rng.gen_range(0..standard.len())].domain.as_str());
            }
            listed.sort_unstable();
            listed.dedup();
        }
        let mut front =
            format!("<html><head><title>{domain}</title></head><body><h1>{domain}</h1>\n");
        let tokens = rng.gen_range(config.tokens_per_page.0..=config.tokens_per_page.1);
        front.push_str(&format!(
            "<p>{}</p>\n",
            paragraph(&mixture, &noise, None, 0.0, tokens, &mut rng)
        ));
        for pharmacy in &listed {
            front.push_str(&format!(
                "<a href=\"http://{pharmacy}/\">verified pharmacy listing</a>\n"
            ));
        }
        for trusted in ["fda.gov", "nih.gov", "cdc.gov"] {
            if rng.gen_bool(0.6) {
                front.push_str(&format!("<a href=\"http://{trusted}/\">resource</a>\n"));
            }
        }
        front.push_str("</body></html>");
        web.add_page(&format!("http://{domain}/"), front);
    }
}

fn build_snapshot(
    config: &CorpusConfig,
    name: &str,
    legit: &[SiteMeta],
    illegit: &[SiteMeta],
    noise_pool: &[String],
    seed: u64,
    drift: f64,
) -> Snapshot {
    let mut web = InMemoryWeb::new();
    let mut sites = Vec::with_capacity(legit.len() + illegit.len());
    let portals = portal_domains(config, seed);
    let hub_domains: Vec<&str> = illegit
        .iter()
        .filter(|m| m.profile == SiteProfile::AffiliateHub)
        .map(|m| m.domain.as_str())
        .collect();
    for (i, meta) in legit.iter().chain(illegit.iter()).enumerate() {
        let mut rng = SmallRng::seed_from_u64(seed ^ ((i as u64) << 16));
        render_site(
            config,
            meta,
            legit,
            &hub_domains,
            &portals,
            noise_pool,
            drift,
            &mut rng,
            &mut web,
        );
        sites.push(PharmacySite {
            domain: meta.domain.clone(),
            class: meta.class,
            profile: meta.profile,
            seed_url: format!("http://{}/", meta.domain),
        });
    }
    render_portals(config, legit, &portals, noise_pool, seed, &mut web);
    Snapshot {
        name: name.to_string(),
        sites,
        portals,
        web,
    }
}

/// Keyword stuffing: a handful of trust-language words repeated at a
/// fixed rate — a common pattern on real illegitimate storefronts. It
/// specifically defeats classifiers that double-count correlated evidence
/// (naive Bayes treats each repetition as independent proof of
/// legitimacy) while leaving the overall frequency profile detectable by
/// margin-based models.
pub(crate) struct Stuffing {
    words: Vec<&'static str>,
    rate: f64,
}

fn maybe_stuffing(meta: &SiteMeta, rng: &mut SmallRng) -> Option<Stuffing> {
    if meta.class != SiteClass::Illegitimate
        || meta.profile == SiteProfile::MimicOutlier
        || !rng.gen_bool(0.3)
    {
        return None;
    }
    let count = rng.gen_range(2..=4);
    let words = (0..count)
        .map(|_| vocab::LEGITIMATE_STORE[rng.gen_range(0..vocab::LEGITIMATE_STORE.len())])
        .collect();
    Some(Stuffing {
        words,
        rate: rng.gen_range(0.10..0.22),
    })
}

fn sample_token<'a>(
    mixture: &Mixture,
    noise: &'a [String],
    drift: f64,
    rng: &mut SmallRng,
) -> &'a str
where
{
    let u: f64 = rng.gen();
    let mut acc = 0.0;
    for (cat, &w) in mixture.iter().enumerate() {
        acc += w;
        if u <= acc {
            return match cat {
                0 => vocab::zipf_sample(vocab::SHARED_HEALTH, rng),
                1 => vocab::zipf_sample(vocab::LEGITIMATE_STORE, rng),
                2 => {
                    if drift > 0.0 && rng.gen_bool(drift) {
                        vocab::zipf_sample(vocab::DRIFT_SPAM, rng)
                    } else {
                        vocab::zipf_sample(vocab::ILLEGITIMATE_SPAM, rng)
                    }
                }
                3 => vocab::zipf_sample(vocab::REFILL_ONLY, rng),
                _ => {
                    let idx = rng.gen_range(0..noise.len());
                    &noise[idx]
                }
            };
        }
    }
    vocab::zipf_sample(vocab::SHARED_HEALTH, rng)
}

pub(crate) fn paragraph(
    mixture: &Mixture,
    noise: &[String],
    stuffing: Option<&Stuffing>,
    drift: f64,
    tokens: usize,
    rng: &mut SmallRng,
) -> String {
    let mut text = String::with_capacity(tokens * 8);
    for t in 0..tokens {
        if t > 0 {
            text.push(' ');
        }
        let word = match stuffing {
            Some(stuff) if rng.gen_bool(stuff.rate) => {
                stuff.words[rng.gen_range(0..stuff.words.len())]
            }
            _ => sample_token(mixture, noise, drift, rng),
        };
        text.push_str(word);
    }
    text
}

#[allow(clippy::too_many_arguments)]
fn render_site(
    config: &CorpusConfig,
    meta: &SiteMeta,
    legit: &[SiteMeta],
    hub_domains: &[&str],
    portal_domains: &[String],
    noise_pool: &[String],
    drift: f64,
    rng: &mut SmallRng,
    web: &mut InMemoryWeb,
) {
    let mixture = site_mixture(meta.class, meta.profile, rng);
    // Each site's filler vocabulary is a sample of the shared long-tail
    // pool (not a private invention — see `vocab::noise_pool`).
    let noise: Vec<String> = (0..config.site_noise_words.max(1))
        .map(|_| noise_pool[rng.gen_range(0..noise_pool.len())].clone())
        .collect();
    let stuffing = maybe_stuffing(meta, rng);
    let n_pages = if meta.profile == SiteProfile::RefillOnly {
        rng.gen_range(config.pages_per_site.0..=(config.pages_per_site.0 + 1))
    } else {
        rng.gen_range(config.pages_per_site.0..=config.pages_per_site.1)
    };
    let mut outbound = outbound_targets(meta, legit, hub_domains, rng);
    // Standard legitimate pharmacies often link to health portals
    // ("resources" pages); this is the forward half of the two-hop trust
    // path the Section 7 extension exploits.
    if meta.class == SiteClass::Legitimate
        && meta.profile == SiteProfile::Standard
        && !portal_domains.is_empty()
        && rng.gen_bool(0.4)
    {
        outbound.push(portal_domains[rng.gen_range(0..portal_domains.len())].clone());
        outbound.sort_unstable();
        outbound.dedup();
    }

    // Front page: navigation + a share of the outbound links.
    let mut front = String::new();
    front.push_str(&format!(
        "<html><head><title>{}</title></head><body><h1>{}</h1>\n",
        meta.domain, meta.domain
    ));
    for p in 1..n_pages {
        front.push_str(&format!("<a href=\"/page{p}.html\">section {p}</a>\n"));
    }
    let tokens = rng.gen_range(config.tokens_per_page.0..=config.tokens_per_page.1);
    front.push_str(&format!(
        "<p>{}</p>\n",
        paragraph(&mixture, &noise, stuffing.as_ref(), drift, tokens, rng)
    ));
    // Generic anchor text: the *link structure* is the network signal;
    // spelling the target domain out in the anchor would copy that signal
    // into the text features, which the paper treats as separate.
    for target in &outbound {
        front.push_str(&format!("<a href=\"http://{target}/\">partner site</a>\n"));
    }
    front.push_str("</body></html>");
    web.add_page(&format!("http://{}/", meta.domain), front);

    // Inner pages: text plus occasional repeated outbound links.
    for p in 1..n_pages {
        let mut body = String::new();
        body.push_str(&format!(
            "<html><body><h2>{} section {p}</h2>\n<a href=\"/\">home</a>\n",
            meta.domain
        ));
        let tokens = rng.gen_range(config.tokens_per_page.0..=config.tokens_per_page.1);
        body.push_str(&format!(
            "<p>{}</p>\n",
            paragraph(&mixture, &noise, stuffing.as_ref(), drift, tokens, rng)
        ));
        if !outbound.is_empty() && rng.gen_bool(0.3) {
            let target = &outbound[rng.gen_range(0..outbound.len())];
            body.push_str(&format!("<a href=\"http://{target}/\">partner site</a>\n"));
        }
        body.push_str("</body></html>");
        web.add_page(&format!("http://{}/page{p}.html", meta.domain), body);
    }
}

fn outbound_targets(
    meta: &SiteMeta,
    legit: &[SiteMeta],
    hub_domains: &[&str],
    rng: &mut SmallRng,
) -> Vec<String> {
    let mut targets: Vec<String> = Vec::new();
    match (meta.class, meta.profile) {
        (SiteClass::Legitimate, SiteProfile::RefillOnly) => {
            // Thin storefronts: at most one or two generic targets.
            for _ in 0..rng.gen_range(0..=2) {
                targets.push(vocab::zipf_sample(vocab::LEGITIMATE_TARGETS, rng).to_string());
            }
        }
        (SiteClass::Legitimate, _) => {
            for _ in 0..rng.gen_range(3..=7) {
                targets.push(vocab::zipf_sample(vocab::LEGITIMATE_TARGETS, rng).to_string());
            }
            for &p in &meta.partners {
                targets.push(legit[p].domain.clone());
            }
        }
        (SiteClass::Illegitimate, SiteProfile::MimicOutlier) => {
            // Outside any affiliate network: a couple of neutral links.
            const NEUTRAL: &[&str] = &["google.com", "wikipedia.org", "drugs.com"];
            for _ in 0..rng.gen_range(1..=3) {
                targets.push(vocab::zipf_sample(NEUTRAL, rng).to_string());
            }
        }
        (SiteClass::Illegitimate, _) => {
            for _ in 0..rng.gen_range(2..=6) {
                targets.push(vocab::zipf_sample(vocab::ILLEGITIMATE_TARGETS, rng).to_string());
            }
            if !hub_domains.is_empty() && meta.profile != SiteProfile::AffiliateHub {
                for _ in 0..rng.gen_range(1..=3.min(hub_domains.len())) {
                    targets.push(hub_domains[rng.gen_range(0..hub_domains.len())].to_string());
                }
            }
        }
    }
    targets.sort_unstable();
    targets.dedup();
    // Never link to yourself.
    targets.retain(|t| t != &meta.domain);
    targets
}

#[cfg(test)]
mod tests {
    use super::*;
    use pharmaverify_crawl::{CrawlConfig, Crawler, Url, WebHost};

    fn web() -> SyntheticWeb {
        SyntheticWeb::generate(&CorpusConfig::small(), 42)
    }

    #[test]
    fn snapshot_sizes_match_config() {
        let w = web();
        let s1 = w.snapshot().stats();
        assert_eq!(s1.legitimate, 12);
        assert_eq!(s1.illegitimate, 48);
        assert_eq!(s1.total, 60);
        let s2 = w.snapshot2().stats();
        assert_eq!(s2.legitimate, 12);
        assert_eq!(s2.illegitimate, 48);
    }

    #[test]
    fn paper_config_matches_table_1() {
        let c = CorpusConfig::paper();
        assert_eq!(c.n_legitimate, 167);
        assert_eq!(c.n_illegitimate_snapshot1, 1292);
        assert_eq!(c.n_illegitimate_snapshot2, 1275);
    }

    #[test]
    fn legitimate_domains_shared_between_snapshots() {
        let w = web();
        let legit1: Vec<&String> = w
            .snapshot()
            .sites
            .iter()
            .filter(|s| s.label())
            .map(|s| &s.domain)
            .collect();
        let legit2: Vec<&String> = w
            .snapshot2()
            .sites
            .iter()
            .filter(|s| s.label())
            .map(|s| &s.domain)
            .collect();
        assert_eq!(legit1, legit2);
    }

    #[test]
    fn illegitimate_domains_disjoint_between_snapshots() {
        let w = web();
        let illegit1: std::collections::HashSet<&String> = w
            .snapshot()
            .sites
            .iter()
            .filter(|s| !s.label())
            .map(|s| &s.domain)
            .collect();
        for site in w.snapshot2().sites.iter().filter(|s| !s.label()) {
            assert!(
                !illegit1.contains(&site.domain),
                "{} appears in both snapshots",
                site.domain
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = SyntheticWeb::generate(&CorpusConfig::small(), 7);
        let b = SyntheticWeb::generate(&CorpusConfig::small(), 7);
        for ((ua, ha), (ub, hb)) in a.snapshot().web.iter().zip(b.snapshot().web.iter()) {
            assert_eq!(ua, ub);
            assert_eq!(ha, hb);
        }
        let c = SyntheticWeb::generate(&CorpusConfig::small(), 8);
        assert_ne!(
            a.snapshot().web.iter().next().map(|(_, h)| h.to_string()),
            c.snapshot().web.iter().next().map(|(_, h)| h.to_string())
        );
    }

    #[test]
    fn sites_are_crawlable() {
        let w = web();
        let snap = w.snapshot();
        let crawler = Crawler::new(CrawlConfig::default());
        let site = &snap.sites[0];
        let result = crawler.crawl(&snap.web, &Url::parse(&site.seed_url).unwrap());
        assert!(
            result.page_count() >= 2,
            "crawled {} pages",
            result.page_count()
        );
        assert_eq!(result.dead_links, 0, "no dead internal links");
    }

    #[test]
    fn front_page_exists_for_every_site() {
        let w = web();
        for site in &w.snapshot().sites {
            let url = Url::parse(&site.seed_url).unwrap();
            assert!(
                w.snapshot().web.fetch(&url).is_ok(),
                "missing front page for {}",
                site.domain
            );
        }
    }

    #[test]
    fn classes_use_different_vocabulary() {
        let w = web();
        let snap = w.snapshot();
        let crawler = Crawler::new(CrawlConfig::default());
        let mut spam_legit = 0usize;
        let mut spam_illegit = 0usize;
        for site in &snap.sites {
            if site.profile != SiteProfile::Standard {
                continue;
            }
            let crawl = crawler.crawl(&snap.web, &Url::parse(&site.seed_url).unwrap());
            let text = pharmaverify_crawl::summarize(&crawl);
            let viagra = text.matches("viagra").count();
            if site.label() {
                spam_legit += viagra;
            } else {
                spam_illegit += viagra;
            }
        }
        assert!(
            spam_illegit > spam_legit * 5,
            "spam terms must dominate illegitimate sites: {spam_illegit} vs {spam_legit}"
        );
    }

    #[test]
    fn affiliate_hubs_receive_links() {
        let w = web();
        let snap = w.snapshot();
        let hubs: std::collections::HashSet<&str> = snap
            .sites
            .iter()
            .filter(|s| s.profile == SiteProfile::AffiliateHub)
            .map(|s| s.domain.as_str())
            .collect();
        assert!(!hubs.is_empty());
        let crawler = Crawler::new(CrawlConfig::default());
        let mut hub_inlinks = 0usize;
        for site in &snap.sites {
            let crawl = crawler.crawl(&snap.web, &Url::parse(&site.seed_url).unwrap());
            for (domain, _) in crawl.outbound_endpoints() {
                if hubs.contains(domain.as_str()) {
                    hub_inlinks += 1;
                }
            }
        }
        assert!(hub_inlinks > 0, "affiliate hubs must be linked to");
    }

    #[test]
    fn oracle_labels_by_domain() {
        let w = web();
        let snap = w.snapshot();
        let legit = snap.sites.iter().find(|s| s.label()).unwrap();
        assert_eq!(snap.oracle(&legit.domain), Some(true));
        assert_eq!(snap.oracle("not-a-site.com"), None);
    }

    #[test]
    fn profiles_present_in_expected_fractions() {
        let w = SyntheticWeb::generate(&CorpusConfig::medium(), 5);
        let snap = w.snapshot();
        let mimic = snap
            .sites
            .iter()
            .filter(|s| s.profile == SiteProfile::MimicOutlier)
            .count();
        let refill = snap
            .sites
            .iter()
            .filter(|s| s.profile == SiteProfile::RefillOnly)
            .count();
        let hubs = snap
            .sites
            .iter()
            .filter(|s| s.profile == SiteProfile::AffiliateHub)
            .count();
        assert_eq!(hubs, 6);
        assert!(mimic >= 10, "mimic = {mimic}");
        assert!(refill >= 3, "refill = {refill}");
    }
}
