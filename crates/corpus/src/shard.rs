//! Sharded streaming generation of a web-scale synthetic link graph.
//!
//! The paper's corpus (~3k sites) fits comfortably in memory, but the
//! ROADMAP's production tier needs 10⁵–10⁶ domains — far too many to
//! materialize as full [`crate::PharmacySite`]s with page content. This
//! module generates only what the link-analysis stage consumes: a stream
//! of [`DomainRecord`]s (domain name, pharmacy flag, weighted outbound
//! links), produced shard by shard so peak memory is one shard, never the
//! whole web.
//!
//! Determinism contract: every record is a pure function of
//! `(config.seed, domain index)` — the RNG is re-seeded per domain, not
//! carried across the stream — so the concatenated output is identical
//! for **any** shard size. Consumers may therefore pick a shard size for
//! memory reasons alone; the frozen graph (and every rank score computed
//! from it) comes out bit-identical.

use rand::rngs::SmallRng;
use rand::Rng;
use rand::SeedableRng;

/// Shape of the synthetic web-scale graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WebScaleConfig {
    /// Total number of domains to generate.
    pub domains: usize,
    /// Domains per shard (memory high-water mark of the stream).
    pub shard_size: usize,
    /// The first `trusted_seeds` domains are known-legitimate pharmacies
    /// — the TrustRank seed set of the web tier.
    pub trusted_seeds: usize,
    /// Base seed; every domain derives its own RNG from this.
    pub seed: u64,
}

impl WebScaleConfig {
    /// A web-tier config over `domains` domains.
    pub fn new(domains: usize, seed: u64) -> WebScaleConfig {
        WebScaleConfig {
            domains,
            shard_size: 8192,
            trusted_seeds: (domains / 200).clamp(1, 500),
            seed,
        }
    }
}

/// One domain of the web-scale graph: exactly the fields the CSR builder
/// consumes.
#[derive(Debug, Clone, PartialEq)]
pub struct DomainRecord {
    /// Second-level domain name, unique per index.
    pub domain: String,
    /// True for pharmacy domains (trusted seeds and the pharmacy stride).
    pub is_pharmacy: bool,
    /// Weighted outbound links (target domain, link count). Weights are
    /// integer-valued counts, like every link weight in the system.
    pub links: Vec<(String, f64)>,
}

/// Every `PHARMACY_STRIDE`-th domain is a pharmacy (besides the trusted
/// seed prefix), giving the web tier a sprinkling of candidate sites to
/// rank among the ordinary web.
const PHARMACY_STRIDE: usize = 41;

/// Out-degree range per domain.
const MIN_DEGREE: usize = 3;
const MAX_DEGREE: usize = 9;

/// Fraction of links aimed at the hub prefix (the low-index head of the
/// power-law target distribution).
const HUB_BIAS: f64 = 0.35;

/// Top-level domains cycled through by [`domain_name`].
const TLDS: &[&str] = &["com", "net", "org", "info", "biz"];

/// The stable name of domain `i`.
pub fn domain_name(i: usize) -> String {
    format!("site{i}.{}", TLDS[i % TLDS.len()])
}

/// Derives the per-domain RNG seed: a splitmix-style scramble of the
/// index keeps neighbouring domains decorrelated while staying a pure
/// function of `(seed, i)`.
fn domain_seed(seed: u64, i: usize) -> u64 {
    let mut z = seed ^ (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Generates domain `i` of the configured web. Pure in `(config, i)`.
pub fn domain_record(config: &WebScaleConfig, i: usize) -> DomainRecord {
    let mut rng = SmallRng::seed_from_u64(domain_seed(config.seed, i));
    let hubs = (config.domains / 50).max(16).min(config.domains);
    let degree = rng.gen_range(MIN_DEGREE..=MAX_DEGREE);
    let mut links: Vec<(String, f64)> = Vec::with_capacity(degree);
    // A web of one domain has no valid link target at all.
    for _ in 0..degree {
        if config.domains < 2 {
            break;
        }
        let drawn = if rng.gen_range(0.0..1.0) < HUB_BIAS {
            // Head of the distribution: the hub prefix.
            rng.gen_range(0..hubs)
        } else {
            // Tail: quadratic skew toward low indices so in-degree
            // follows a power-law-like decay without a lookup table.
            // Pure integer arithmetic — ⌊x²/n⌋ for uniform x in [0, n)
            // — rather than the old `(n·u²) as usize % n` float map,
            // whose truncation biased the tail and whose modulo was a
            // no-op wart.
            let x = rng.gen_range(0..config.domains as u64);
            ((x as u128 * x as u128) / config.domains as u128) as usize
        };
        // Self-excluding remap instead of a silent drop: the old code
        // skipped self-targets entirely, quietly deflating the
        // out-degree of exactly the low-index domains the skew favours
        // (and leaving some domains dangling). Every drawn edge now
        // lands, so out-degree always equals the drawn degree.
        let target = if drawn == i {
            (i + 1) % config.domains
        } else {
            drawn
        };
        links.push((domain_name(target), rng.gen_range(1..=3) as f64));
    }
    DomainRecord {
        domain: domain_name(i),
        is_pharmacy: i < config.trusted_seeds || i % PHARMACY_STRIDE == 0,
        links,
    }
}

/// Streaming generator: yields shards of [`DomainRecord`]s until the
/// configured domain count is exhausted. Never holds more than one shard.
#[derive(Debug, Clone)]
pub struct ShardedWebGenerator {
    config: WebScaleConfig,
    next_index: usize,
}

impl ShardedWebGenerator {
    /// A generator positioned at the first shard.
    pub fn new(config: WebScaleConfig) -> ShardedWebGenerator {
        assert!(config.domains > 0, "need at least one domain");
        assert!(config.shard_size > 0, "shard size must be positive");
        ShardedWebGenerator {
            config,
            next_index: 0,
        }
    }

    /// The generator's configuration.
    pub fn config(&self) -> &WebScaleConfig {
        &self.config
    }

    /// Domains generated so far.
    pub fn generated(&self) -> usize {
        self.next_index
    }

    /// The TrustRank seed set of the web tier: the trusted-prefix domain
    /// names (their node ids depend on the consumer's interning order).
    pub fn trusted_domains(&self) -> Vec<String> {
        (0..self.config.trusted_seeds.min(self.config.domains))
            .map(domain_name)
            .collect()
    }
}

impl Iterator for ShardedWebGenerator {
    type Item = Vec<DomainRecord>;

    fn next(&mut self) -> Option<Vec<DomainRecord>> {
        if self.next_index >= self.config.domains {
            return None;
        }
        let _span = pharmaverify_obs::global().span("corpus/shard/generate");
        let end = self
            .config
            .domains
            .min(self.next_index + self.config.shard_size);
        let shard: Vec<DomainRecord> = (self.next_index..end)
            .map(|i| domain_record(&self.config, i))
            .collect();
        self.next_index = end;
        Some(shard)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(domains: usize, shard_size: usize) -> WebScaleConfig {
        WebScaleConfig {
            domains,
            shard_size,
            trusted_seeds: 5,
            seed: 99,
        }
    }

    #[test]
    fn output_is_independent_of_shard_size() {
        let a: Vec<DomainRecord> = ShardedWebGenerator::new(config(500, 7)).flatten().collect();
        let b: Vec<DomainRecord> = ShardedWebGenerator::new(config(500, 128))
            .flatten()
            .collect();
        let c: Vec<DomainRecord> = ShardedWebGenerator::new(config(500, 500))
            .flatten()
            .collect();
        assert_eq!(a, b);
        assert_eq!(b, c);
        assert_eq!(a.len(), 500);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a: Vec<DomainRecord> = ShardedWebGenerator::new(config(200, 64))
            .flatten()
            .collect();
        let b: Vec<DomainRecord> = ShardedWebGenerator::new(config(200, 64))
            .flatten()
            .collect();
        assert_eq!(a, b);
        let mut other = config(200, 64);
        other.seed = 100;
        let c: Vec<DomainRecord> = ShardedWebGenerator::new(other).flatten().collect();
        assert_ne!(a, c, "different seeds must differ");
    }

    #[test]
    fn shard_sizes_and_domain_names_are_stable() {
        let shards: Vec<Vec<DomainRecord>> = ShardedWebGenerator::new(config(250, 100)).collect();
        assert_eq!(
            shards.iter().map(Vec::len).collect::<Vec<_>>(),
            vec![100, 100, 50]
        );
        assert_eq!(shards[0][0].domain, domain_name(0));
        assert_eq!(shards[2][49].domain, domain_name(249));
        // Names are unique across the stream.
        let mut names: Vec<&str> = shards.iter().flatten().map(|r| r.domain.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 250);
    }

    #[test]
    fn trusted_prefix_is_pharmacies_and_weights_are_counts() {
        let cfg = config(300, 300);
        let records: Vec<DomainRecord> = ShardedWebGenerator::new(cfg).flatten().collect();
        for (i, r) in records.iter().enumerate().take(5) {
            assert!(r.is_pharmacy, "trusted seed {i} must be a pharmacy");
        }
        for r in &records {
            for (target, w) in &r.links {
                assert_ne!(target, &r.domain, "self-links are excluded by remap");
                assert!(
                    (1.0..=3.0).contains(w) && w.fract() == 0.0,
                    "weights are integer link counts, got {w}"
                );
            }
        }
        let gen = ShardedWebGenerator::new(cfg);
        assert_eq!(gen.trusted_domains().len(), 5);
        assert_eq!(gen.trusted_domains()[0], domain_name(0));
    }

    /// Pins the exact `(seed, index) → record` map of the v2 target
    /// distribution (pure-integer self-excluding skew). Any change to
    /// the RNG draw sequence, the skew arithmetic, or the self-remap
    /// shows up here as a concrete diff, not a silent drift of every
    /// downstream web-tier score.
    #[test]
    fn records_are_pinned_per_seed_and_index() {
        let cfg = config(500, 500);
        let records: Vec<DomainRecord> = ShardedWebGenerator::new(cfg).flatten().collect();
        let record = |domain: &str, is_pharmacy: bool, links: &[(&str, f64)]| DomainRecord {
            domain: domain.to_string(),
            is_pharmacy,
            links: links.iter().map(|(t, w)| (t.to_string(), *w)).collect(),
        };
        // Index 0 draws itself once; the remap sends that link to
        // `site1.net` instead of dropping it (degree stays 5).
        assert_eq!(
            records[0],
            record(
                "site0.com",
                true,
                &[
                    ("site356.net", 1.0),
                    ("site3.info", 1.0),
                    ("site1.net", 1.0),
                    ("site8.info", 3.0),
                    ("site194.biz", 3.0),
                ],
            )
        );
        assert_eq!(
            records[106],
            record(
                "site106.net",
                false,
                &[
                    ("site235.com", 3.0),
                    ("site12.org", 2.0),
                    ("site2.org", 3.0),
                    ("site390.com", 3.0),
                    ("site15.com", 3.0),
                ],
            )
        );
        assert_eq!(
            records[499],
            record(
                "site499.biz",
                false,
                &[
                    ("site9.biz", 1.0),
                    ("site387.org", 2.0),
                    ("site72.org", 3.0),
                    ("site4.biz", 3.0),
                ],
            )
        );
    }

    /// The old map silently dropped self-targeted draws, so low-index
    /// domains could come out below `MIN_DEGREE` (or dangling). The
    /// remap guarantees every drawn edge lands.
    #[test]
    fn out_degree_always_honors_the_drawn_degree() {
        let records: Vec<DomainRecord> = ShardedWebGenerator::new(config(2000, 512))
            .flatten()
            .collect();
        for (i, r) in records.iter().enumerate() {
            assert!(
                (MIN_DEGREE..=MAX_DEGREE).contains(&r.links.len()),
                "domain {i} has out-degree {} outside {MIN_DEGREE}..={MAX_DEGREE}",
                r.links.len()
            );
        }
    }

    #[test]
    fn single_domain_web_has_no_links() {
        let records: Vec<DomainRecord> = ShardedWebGenerator::new(config(1, 1)).flatten().collect();
        assert_eq!(records.len(), 1);
        assert!(records[0].links.is_empty(), "no valid non-self target");
    }

    #[test]
    #[should_panic(expected = "at least one domain")]
    fn empty_config_panics() {
        ShardedWebGenerator::new(config(0, 10));
    }
}
