//! A labelled crawlable snapshot — the synthetic equivalent of one
//! "PharmaVerComp" database instance (Table 1 of the paper).

use crate::site::PharmacySite;
use pharmaverify_crawl::InMemoryWeb;
use std::collections::HashMap;

/// One dataset snapshot: labelled pharmacies plus the web they live in.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Display name ("Dataset 1" / "Dataset 2").
    pub name: String,
    /// Labelled pharmacies, in generation order.
    pub sites: Vec<PharmacySite>,
    /// Non-pharmacy health portals that link *to* pharmacies. The paper's
    /// experiments ignore them (its graph only has pharmacy out-links);
    /// they exist to drive the §7 future-work extension ("include in our
    /// network analysis non pharmacy websites that point to pharmacies").
    pub portals: Vec<String>,
    /// The crawlable web (pharmacy and portal pages; other external
    /// domains are link targets, not crawl targets).
    pub web: InMemoryWeb,
}

/// Row of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotStats {
    /// Total pharmacies.
    pub total: usize,
    /// Legitimate pharmacies.
    pub legitimate: usize,
    /// Illegitimate pharmacies.
    pub illegitimate: usize,
}

impl SnapshotStats {
    /// Legitimate share, in percent.
    pub fn legitimate_percent(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            100.0 * self.legitimate as f64 / self.total as f64
        }
    }
}

impl Snapshot {
    /// Class counts (Table 1).
    pub fn stats(&self) -> SnapshotStats {
        let legitimate = self.sites.iter().filter(|s| s.label()).count();
        SnapshotStats {
            total: self.sites.len(),
            legitimate,
            illegitimate: self.sites.len() - legitimate,
        }
    }

    /// Oracle labels in site order (`true` = legitimate).
    pub fn labels(&self) -> Vec<bool> {
        self.sites.iter().map(PharmacySite::label).collect()
    }

    /// The oracle function `O` (§3.2): the label of a pharmacy domain, if
    /// it is in this snapshot.
    pub fn oracle(&self, domain: &str) -> Option<bool> {
        self.sites
            .iter()
            .find(|s| s.domain == domain)
            .map(PharmacySite::label)
    }

    /// Domain → site index lookup table.
    pub fn domain_index(&self) -> HashMap<&str, usize> {
        self.sites
            .iter()
            .enumerate()
            .map(|(i, s)| (s.domain.as_str(), i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{CorpusConfig, SyntheticWeb};

    fn snapshot() -> Snapshot {
        SyntheticWeb::generate(&CorpusConfig::small(), 3)
            .snapshot()
            .clone()
    }

    #[test]
    fn stats_add_up() {
        let snap = snapshot();
        let stats = snap.stats();
        assert_eq!(stats.total, stats.legitimate + stats.illegitimate);
        assert!((stats.legitimate_percent() - 20.0).abs() < 1.0);
    }

    #[test]
    fn labels_match_sites() {
        let snap = snapshot();
        let labels = snap.labels();
        assert_eq!(labels.len(), snap.sites.len());
        for (site, &label) in snap.sites.iter().zip(&labels) {
            assert_eq!(site.label(), label);
        }
    }

    #[test]
    fn oracle_and_index_agree() {
        let snap = snapshot();
        let index = snap.domain_index();
        for (i, site) in snap.sites.iter().enumerate() {
            assert_eq!(index[site.domain.as_str()], i);
            assert_eq!(snap.oracle(&site.domain), Some(site.label()));
        }
        assert_eq!(snap.oracle("unknown.example"), None);
    }

    #[test]
    fn empty_snapshot_percent_is_zero() {
        let stats = SnapshotStats {
            total: 0,
            legitimate: 0,
            illegitimate: 0,
        };
        assert_eq!(stats.legitimate_percent(), 0.0);
    }
}
