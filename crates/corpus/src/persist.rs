//! Snapshot persistence.
//!
//! Snapshots serialize to a single JSON document (site metadata plus every
//! page's URL and HTML) so that a generated dataset can be archived,
//! diffed between runs, and reloaded without regenerating. The generic
//! [`save_json_file`]/[`load_json_file`] helpers expose the same canonical
//! JSON machinery to other on-disk artifacts (e.g. the serving layer's
//! verdict store), and every failure names the offending path — plus the
//! byte offset, for malformed JSON — so store corruption is debuggable.

use crate::site::PharmacySite;
use crate::snapshot::Snapshot;
use pharmaverify_crawl::InMemoryWeb;
use serde::{Deserialize, Serialize};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// The on-disk form of a [`Snapshot`].
#[derive(Debug, Serialize, Deserialize)]
struct SnapshotFile {
    name: String,
    sites: Vec<PharmacySite>,
    #[serde(default)]
    portals: Vec<String>,
    pages: Vec<(String, String)>,
}

/// Errors from JSON persistence; both variants name the file involved.
#[derive(Debug)]
pub enum PersistError {
    /// Filesystem failure at `path`.
    Io {
        /// The file being read or written.
        path: PathBuf,
        /// The underlying filesystem error.
        source: io::Error,
    },
    /// Malformed JSON in the file at `path`.
    Format {
        /// The file being parsed.
        path: PathBuf,
        /// Byte offset where parsing failed, when the parser knows it.
        offset: Option<usize>,
        /// The underlying parse or shape error.
        source: serde_json::Error,
    },
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io { path, source } => {
                write!(f, "I/O error at {}: {source}", path.display())
            }
            PersistError::Format {
                path,
                offset: Some(offset),
                source,
            } => write!(
                f,
                "malformed JSON at {}, byte {offset}: {source}",
                path.display()
            ),
            PersistError::Format {
                path,
                offset: None,
                source,
            } => write!(f, "malformed JSON at {}: {source}", path.display()),
        }
    }
}

impl std::error::Error for PersistError {}

/// Serializes `value` to canonical JSON and writes it to `path`.
pub fn save_json_file<T: Serialize>(value: &T, path: &Path) -> Result<(), PersistError> {
    let json = serde_json::to_string(value).map_err(|source| PersistError::Format {
        path: path.to_path_buf(),
        offset: None,
        source,
    })?;
    fs::write(path, json).map_err(|source| PersistError::Io {
        path: path.to_path_buf(),
        source,
    })
}

/// Reads and deserializes the JSON document at `path`.
pub fn load_json_file<T: Deserialize>(path: &Path) -> Result<T, PersistError> {
    let json = fs::read_to_string(path).map_err(|source| PersistError::Io {
        path: path.to_path_buf(),
        source,
    })?;
    serde_json::from_str(&json).map_err(|source| PersistError::Format {
        path: path.to_path_buf(),
        offset: source.offset(),
        source,
    })
}

/// Writes `snapshot` to `path` as JSON.
pub fn save_snapshot(snapshot: &Snapshot, path: &Path) -> Result<(), PersistError> {
    let file = SnapshotFile {
        name: snapshot.name.clone(),
        sites: snapshot.sites.clone(),
        portals: snapshot.portals.clone(),
        pages: snapshot
            .web
            .iter()
            .map(|(u, h)| (u.to_string(), h.to_string()))
            .collect(),
    };
    save_json_file(&file, path)
}

/// Reads a snapshot back from `path`.
pub fn load_snapshot(path: &Path) -> Result<Snapshot, PersistError> {
    let file: SnapshotFile = load_json_file(path)?;
    let mut web = InMemoryWeb::new();
    for (url, html) in file.pages {
        web.add_page(&url, html);
    }
    Ok(Snapshot {
        name: file.name,
        sites: file.sites,
        portals: file.portals,
        web,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{CorpusConfig, SyntheticWeb};

    #[test]
    fn save_load_round_trip() {
        let web = SyntheticWeb::generate(&CorpusConfig::small(), 3);
        let snap = web.snapshot();
        let dir = std::env::temp_dir().join("pharmaverify-persist-test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snapshot.json");
        save_snapshot(snap, &path).unwrap();
        let back = load_snapshot(&path).unwrap();
        assert_eq!(back.name, snap.name);
        assert_eq!(back.sites, snap.sites);
        assert_eq!(back.portals, snap.portals);
        assert_eq!(back.web.len(), snap.web.len());
        for ((ua, ha), (ub, hb)) in back.web.iter().zip(snap.web.iter()) {
            assert_eq!(ua, ub);
            assert_eq!(ha, hb);
        }
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn load_missing_file_is_io_error_naming_the_path() {
        let err = load_snapshot(Path::new("/nonexistent/nope.json")).unwrap_err();
        assert!(matches!(err, PersistError::Io { .. }));
        let text = err.to_string();
        assert!(text.contains("/nonexistent/nope.json"), "{text}");
    }

    #[test]
    fn load_garbage_is_format_error() {
        let dir = std::env::temp_dir().join("pharmaverify-persist-test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.json");
        fs::write(&path, "not json at all").unwrap();
        let err = load_snapshot(&path).unwrap_err();
        assert!(matches!(err, PersistError::Format { .. }));
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn malformed_fixture_reports_path_and_byte_offset() {
        let dir = std::env::temp_dir().join("pharmaverify-persist-test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("malformed.json");
        // A dangling comma: the parser stops at the `]` at byte 3.
        fs::write(&path, "[1,]").unwrap();
        let err = load_snapshot(&path).unwrap_err();
        match &err {
            PersistError::Format {
                path: p, offset, ..
            } => {
                assert_eq!(p, &path);
                assert_eq!(*offset, Some(3));
            }
            other => panic!("expected Format error, got {other:?}"),
        }
        let text = err.to_string();
        assert!(text.contains("malformed.json"), "{text}");
        assert!(text.contains("byte 3"), "{text}");
        fs::remove_file(&path).unwrap();
    }
}
