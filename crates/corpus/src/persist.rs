//! Snapshot persistence.
//!
//! Snapshots serialize to a single JSON document (site metadata plus every
//! page's URL and HTML) so that a generated dataset can be archived,
//! diffed between runs, and reloaded without regenerating.

use crate::site::PharmacySite;
use crate::snapshot::Snapshot;
use pharmaverify_crawl::InMemoryWeb;
use serde::{Deserialize, Serialize};
use std::fs;
use std::io;
use std::path::Path;

/// The on-disk form of a [`Snapshot`].
#[derive(Debug, Serialize, Deserialize)]
struct SnapshotFile {
    name: String,
    sites: Vec<PharmacySite>,
    #[serde(default)]
    portals: Vec<String>,
    pages: Vec<(String, String)>,
}

/// Errors from snapshot persistence.
#[derive(Debug)]
pub enum PersistError {
    /// Filesystem failure.
    Io(io::Error),
    /// Malformed snapshot file.
    Format(serde_json::Error),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "snapshot I/O error: {e}"),
            PersistError::Format(e) => write!(f, "snapshot format error: {e}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<serde_json::Error> for PersistError {
    fn from(e: serde_json::Error) -> Self {
        PersistError::Format(e)
    }
}

/// Writes `snapshot` to `path` as JSON.
pub fn save_snapshot(snapshot: &Snapshot, path: &Path) -> Result<(), PersistError> {
    let file = SnapshotFile {
        name: snapshot.name.clone(),
        sites: snapshot.sites.clone(),
        portals: snapshot.portals.clone(),
        pages: snapshot
            .web
            .iter()
            .map(|(u, h)| (u.to_string(), h.to_string()))
            .collect(),
    };
    let json = serde_json::to_string(&file)?;
    fs::write(path, json)?;
    Ok(())
}

/// Reads a snapshot back from `path`.
pub fn load_snapshot(path: &Path) -> Result<Snapshot, PersistError> {
    let json = fs::read_to_string(path)?;
    let file: SnapshotFile = serde_json::from_str(&json)?;
    let mut web = InMemoryWeb::new();
    for (url, html) in file.pages {
        web.add_page(&url, html);
    }
    Ok(Snapshot {
        name: file.name,
        sites: file.sites,
        portals: file.portals,
        web,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{CorpusConfig, SyntheticWeb};

    #[test]
    fn save_load_round_trip() {
        let web = SyntheticWeb::generate(&CorpusConfig::small(), 3);
        let snap = web.snapshot();
        let dir = std::env::temp_dir().join("pharmaverify-persist-test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snapshot.json");
        save_snapshot(snap, &path).unwrap();
        let back = load_snapshot(&path).unwrap();
        assert_eq!(back.name, snap.name);
        assert_eq!(back.sites, snap.sites);
        assert_eq!(back.portals, snap.portals);
        assert_eq!(back.web.len(), snap.web.len());
        for ((ua, ha), (ub, hb)) in back.web.iter().zip(snap.web.iter()) {
            assert_eq!(ua, ub);
            assert_eq!(ha, hb);
        }
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn load_missing_file_is_io_error() {
        let err = load_snapshot(Path::new("/nonexistent/nope.json")).unwrap_err();
        assert!(matches!(err, PersistError::Io(_)));
    }

    #[test]
    fn load_garbage_is_format_error() {
        let dir = std::env::temp_dir().join("pharmaverify-persist-test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.json");
        fs::write(&path, "not json at all").unwrap();
        let err = load_snapshot(&path).unwrap_err();
        assert!(matches!(err, PersistError::Format(_)));
        fs::remove_file(&path).unwrap();
    }
}
